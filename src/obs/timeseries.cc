#include "obs/timeseries.h"

#include <algorithm>
#include <cstdio>

#include "obs/trace.h"

namespace esd::obs {

namespace {

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace

MetricHistory::MetricHistory(MetricRegistry& registry, const Options& options)
    : registry_(registry), options_(options) {}

MetricHistory::~MetricHistory() { Stop(); }

void MetricHistory::Start() {
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (sampler_.joinable()) return;
  sampler_stop_ = false;
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void MetricHistory::Stop() {
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    if (!sampler_.joinable()) return;
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  sampler_.join();
}

void MetricHistory::SamplerLoop() {
  std::unique_lock<std::mutex> lock(sampler_mu_);
  while (!sampler_stop_) {
    lock.unlock();
    SampleNow();
    lock.lock();
    sampler_cv_.wait_for(lock, options_.interval,
                         [this] { return sampler_stop_; });
  }
}

size_t MetricHistory::ColumnIndexLocked(const std::string& name,
                                        bool monotone) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const size_t col = names_.size();
  names_.push_back(name);
  monotone_.push_back(monotone ? 1 : 0);
  index_.emplace(name, col);
  return col;
}

void MetricHistory::SampleNow() {
  // The hook refreshes push-style gauges (e.g. live-index lag) and may
  // take foreign locks, so it runs before ours.
  if (options_.pre_sample) options_.pre_sample();
  std::vector<MetricRegistry::Sample> points = registry_.Samples();
  const uint64_t now_ns = MonotonicNanos();

  std::lock_guard<std::mutex> lock(mu_);
  Sample row;
  row.taken_ns = now_ns;
  // Registries only grow, so columns are append-only too; older (shorter)
  // rows simply lack the newest columns and deltas skip them.
  for (const MetricRegistry::Sample& p : points) {
    const size_t col = ColumnIndexLocked(p.name, p.monotone);
    if (row.values.size() <= col) row.values.resize(col + 1, 0.0);
    row.values[col] = p.value;
  }
  ring_.push_back(std::move(row));
  while (ring_.size() > std::max<size_t>(options_.capacity, 2)) {
    ring_.pop_front();
  }
}

size_t MetricHistory::NumSamples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::vector<std::string> MetricHistory::IntervalsJson(
    size_t max_intervals) const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2) return out;
  const size_t intervals = ring_.size() - 1;
  const size_t emit = std::min(max_intervals, intervals);
  const uint64_t newest_ns = ring_.back().taken_ns;
  auto column = [&](const Sample& s, size_t col) -> double {
    return col < s.values.size() ? s.values[col] : 0.0;
  };
  auto find_col = [&](const char* name) -> size_t {
    auto it = index_.find(name);
    return it == index_.end() ? static_cast<size_t>(-1) : it->second;
  };
  const size_t completed_col = find_col("esd_serve_completed_total");
  const size_t hits_col = find_col("esd_cache_hits");
  const size_t misses_col = find_col("esd_cache_misses");
  for (size_t i = intervals - emit; i < intervals; ++i) {
    const Sample& a = ring_[i];
    const Sample& b = ring_[i + 1];
    const double dt_s =
        std::max(1e-9, static_cast<double>(b.taken_ns - a.taken_ns) * 1e-9);
    auto delta = [&](size_t col) -> double {
      if (col == static_cast<size_t>(-1) || col >= a.values.size()) return 0;
      return column(b, col) - column(a, col);
    };
    const double qps = delta(completed_col) / dt_s;
    const double dh = delta(hits_col);
    const double dm = delta(misses_col);
    const double hit_rate = (dh + dm) > 0 ? dh / (dh + dm) : 0.0;

    std::string line = "{\"age_s\":";
    AppendDouble(&line, static_cast<double>(newest_ns - b.taken_ns) * 1e-9);
    line.append(",\"dt_s\":");
    AppendDouble(&line, dt_s);
    line.append(",\"qps\":");
    AppendDouble(&line, qps);
    line.append(",\"cache_hit_rate\":");
    AppendDouble(&line, hit_rate);
    line.append(",\"rates\":{");
    bool first = true;
    // Only columns present in the older sample have a meaningful delta; a
    // column born mid-window contributes from its next interval on.
    const size_t cols = std::min(a.values.size(), b.values.size());
    for (size_t c = 0; c < cols; ++c) {
      if (monotone_[c] == 0) continue;
      const double d = b.values[c] - a.values[c];
      if (d == 0) continue;
      if (!first) line.push_back(',');
      first = false;
      line.push_back('"');
      line.append(names_[c]);  // sanitized charset: no JSON escaping needed
      line.append("\":");
      AppendDouble(&line, d / dt_s);
    }
    line.append("},\"gauges\":{");
    first = true;
    for (size_t c = 0; c < cols; ++c) {
      if (monotone_[c] != 0) continue;
      if (b.values[c] == a.values[c]) continue;
      if (!first) line.push_back(',');
      first = false;
      line.push_back('"');
      line.append(names_[c]);
      line.append("\":");
      AppendDouble(&line, b.values[c]);
    }
    line.append("}}");
    out.push_back(std::move(line));
  }
  return out;
}

std::string MetricHistory::RatesPrometheus() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < 2) return out;
  const Sample& a = ring_[ring_.size() - 2];
  const Sample& b = ring_.back();
  const double dt_s =
      std::max(1e-9, static_cast<double>(b.taken_ns - a.taken_ns) * 1e-9);
  auto emit = [&](const std::string& name, double value) {
    out.append("# TYPE ").append(name).append(" gauge\n");
    out.append(name).push_back(' ');
    AppendDouble(&out, value);
    out.push_back('\n');
  };
  double completed_rate = 0;
  double dh = 0;
  double dm = 0;
  const size_t cols = std::min(a.values.size(), b.values.size());
  for (size_t c = 0; c < cols; ++c) {
    if (monotone_[c] == 0) continue;
    const double d = b.values[c] - a.values[c];
    if (names_[c] == "esd_serve_completed_total") completed_rate = d / dt_s;
    if (names_[c] == "esd_cache_hits") dh = d;
    if (names_[c] == "esd_cache_misses") dm = d;
    if (d == 0) continue;
    // Recording-rule naming: <metric>:rate_per_s, the conventional
    // aggregation-colon form, so dashboards can use them directly.
    emit(names_[c] + ":rate_per_s", d / dt_s);
  }
  emit("esd_history_qps", completed_rate);
  emit("esd_history_cache_hit_rate", (dh + dm) > 0 ? dh / (dh + dm) : 0.0);
  return out;
}

}  // namespace esd::obs
