#include "obs/metrics.h"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace esd::obs {

namespace {

// Process-wide sinks for type-mismatched lookups: writes land somewhere
// harmless instead of corrupting the metric registered under the name.
Counter& DummyCounter() {
  static Counter c;
  return c;
}
Gauge& DummyGauge() {
  static Gauge g;
  return g;
}
Histogram& DummyHistogram() {
  static Histogram h;
  return h;
}

void AppendDouble(std::string* out, double v) {
  if (!std::isfinite(v)) v = 0;  // exposition stays parseable
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out->append(buf);
}

// HELP text: backslash and newline must be escaped per the exposition
// format; everything else passes through.
void AppendHelpEscaped(std::string* out, const std::string& help) {
  for (char c : help) {
    if (c == '\\') {
      out->append("\\\\");
    } else if (c == '\n') {
      out->append("\\n");
    } else {
      out->push_back(c);
    }
  }
}

}  // namespace

std::string MetricRegistry::SanitizeName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  // push_back instead of assigning a literal: GCC 12's -Wrestrict misfires
  // on the inlined char* assignment after the loop above.
  if (out.empty()) out.push_back('_');
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

MetricRegistry& MetricRegistry::Global() {
  static MetricRegistry* registry = new MetricRegistry();  // never destroyed
  return *registry;
}

MetricRegistry::Slot& MetricRegistry::GetSlot(std::string_view name,
                                              std::string_view help,
                                              Type type,
                                              bool* type_mismatch) {
  std::string key = SanitizeName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    Slot slot;
    slot.type = type;
    slot.help = std::string(help);
    switch (type) {
      case Type::kCounter:
        slot.counter = std::make_unique<Counter>();
        break;
      case Type::kGauge:
        slot.gauge = std::make_unique<Gauge>();
        break;
      case Type::kHistogram:
        slot.histogram = std::make_unique<Histogram>();
        break;
    }
    it = slots_.emplace(std::move(key), std::move(slot)).first;
  }
  *type_mismatch = it->second.type != type;
  return it->second;
}

Counter& MetricRegistry::GetCounter(std::string_view name,
                                    std::string_view help) {
  bool mismatch = false;
  Slot& slot = GetSlot(name, help, Type::kCounter, &mismatch);
  return mismatch ? DummyCounter() : *slot.counter;
}

Gauge& MetricRegistry::GetGauge(std::string_view name, std::string_view help) {
  bool mismatch = false;
  Slot& slot = GetSlot(name, help, Type::kGauge, &mismatch);
  return mismatch ? DummyGauge() : *slot.gauge;
}

Histogram& MetricRegistry::GetHistogram(std::string_view name,
                                        std::string_view help) {
  bool mismatch = false;
  Slot& slot = GetSlot(name, help, Type::kHistogram, &mismatch);
  return mismatch ? DummyHistogram() : *slot.histogram;
}

uint64_t MetricRegistry::CounterValue(std::string_view name) const {
  std::string key = SanitizeName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end() || it->second.type != Type::kCounter) return 0;
  return it->second.counter->Value();
}

double MetricRegistry::GaugeValue(std::string_view name) const {
  std::string key = SanitizeName(name);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = slots_.find(key);
  if (it == slots_.end() || it->second.type != Type::kGauge) return 0;
  return it->second.gauge->Value();
}

size_t MetricRegistry::NumMetrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::vector<MetricRegistry::Sample> MetricRegistry::Samples() const {
  std::vector<Sample> out;
  std::lock_guard<std::mutex> lock(mu_);
  out.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {
    switch (slot.type) {
      case Type::kCounter:
        out.push_back(
            {name, static_cast<double>(slot.counter->Value()), true});
        break;
      case Type::kGauge:
        out.push_back({name, slot.gauge->Value(), false});
        break;
      case Type::kHistogram: {
        const LatencyHistogram::Snapshot s = slot.histogram->Snap();
        out.push_back({name + "_count", static_cast<double>(s.count), true});
        out.push_back({name + "_sum", s.sum_us, true});
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::PrometheusText() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, slot] : slots_) {
    if (!slot.help.empty()) {
      out.append("# HELP ").append(name).push_back(' ');
      AppendHelpEscaped(&out, slot.help);
      out.push_back('\n');
    }
    out.append("# TYPE ").append(name).push_back(' ');
    switch (slot.type) {
      case Type::kCounter: {
        out.append("counter\n").append(name).push_back(' ');
        AppendUint(&out, slot.counter->Value());
        out.push_back('\n');
        break;
      }
      case Type::kGauge: {
        out.append("gauge\n").append(name).push_back(' ');
        AppendDouble(&out, slot.gauge->Value());
        out.push_back('\n');
        break;
      }
      case Type::kHistogram: {
        out.append("summary\n");
        const LatencyHistogram::Snapshot s = slot.histogram->Snap();
        const struct {
          const char* q;
          double v;
        } quantiles[] = {
            {"0.5", s.p50_us}, {"0.95", s.p95_us}, {"0.99", s.p99_us}};
        for (const auto& q : quantiles) {
          out.append(name).append("{quantile=\"").append(q.q).append("\"} ");
          AppendDouble(&out, q.v);
          out.push_back('\n');
        }
        out.append(name).append("_sum ");
        AppendDouble(&out, s.sum_us);
        out.push_back('\n');
        out.append(name).append("_count ");
        AppendUint(&out, s.count);
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

std::string MetricRegistry::JsonFields() const {
  std::string out;
  std::lock_guard<std::mutex> lock(mu_);
  bool first = true;
  auto key = [&](const std::string& name, const char* suffix = "") {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(name).append(suffix);
    out.append("\":");
  };
  for (const auto& [name, slot] : slots_) {
    switch (slot.type) {
      case Type::kCounter:
        key(name);
        AppendUint(&out, slot.counter->Value());
        break;
      case Type::kGauge:
        key(name);
        AppendDouble(&out, slot.gauge->Value());
        break;
      case Type::kHistogram: {
        const LatencyHistogram::Snapshot s = slot.histogram->Snap();
        key(name, "_p50");
        AppendDouble(&out, s.p50_us);
        key(name, "_p95");
        AppendDouble(&out, s.p95_us);
        key(name, "_p99");
        AppendDouble(&out, s.p99_us);
        key(name, "_count");
        AppendUint(&out, s.count);
        break;
      }
    }
  }
  return out;
}

}  // namespace esd::obs
