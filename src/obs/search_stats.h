#ifndef ESD_OBS_SEARCH_STATS_H_
#define ESD_OBS_SEARCH_STATS_H_

#include <cstdint>

namespace esd::obs {

/// Counters of one dequeue-twice online search (Algorithm 1 and its vertex
/// analogue). The edge search (core::OnlineTopK) and the vertex baseline
/// (baselines::OnlineVertexTopK) both report through this one struct, so
/// the pruning-power benches and the metric exporters use a single set of
/// field names for either problem.
struct OnlineSearchStats {
  /// Number of exact BFS score computations (<= #candidates; smaller is
  /// better — the pruning-power measure of Fig. 5).
  uint64_t exact_computations = 0;
  /// Total priority-queue pops.
  uint64_t heap_pops = 0;
  /// Candidates whose upper bound was already 0 (base < tau): by the
  /// bound's definition their score is provably 0, so they are certified
  /// without an ego-network BFS. exact_computations + zero_bound_skips is
  /// at most the candidate count.
  uint64_t zero_bound_skips = 0;
  /// Time spent computing the initial upper bounds, in seconds.
  double bound_seconds = 0;
};

}  // namespace esd::obs

#endif  // ESD_OBS_SEARCH_STATS_H_
