#ifndef ESD_OBS_TRACE_H_
#define ESD_OBS_TRACE_H_

/// RAII trace spans with per-thread lock-free ring buffers and Chrome
/// trace_event JSON export (loadable in chrome://tracing or Perfetto).
///
/// Compile-time gate: ESD_OBS_TRACING (default 1; the build sets it to 0
/// under -DESD_OBS=OFF). When off, TraceSpan and Tracer collapse to empty
/// inline stubs and ESD_TRACE_SPAN expands to nothing, so instrumented
/// code compiles unchanged with zero runtime cost. PhaseSeries keeps its
/// metric-registry side (per-phase elapsed-seconds gauges) in both modes —
/// only the span recording is compiled out.
///
/// Runtime gate: Tracer::Global().SetEnabled(false) skips the clock reads
/// too (one relaxed load per span). Tracing is enabled by default when
/// compiled in; the ring buffers only cost memory once a thread records.

#ifndef ESD_OBS_TRACING
#define ESD_OBS_TRACING 1
#endif

#include <chrono>
#include <cstdint>
#include <string>

#if ESD_OBS_TRACING
#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <vector>
#endif

namespace esd::obs {

class MetricRegistry;

inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if ESD_OBS_TRACING

/// Collects completed spans from any number of threads. Each thread owns a
/// fixed-size ring buffer (oldest events overwritten past kRingCapacity);
/// recording is wait-free — three relaxed stores plus one release store of
/// the ring head, no locks, no allocation. Export walks all rings under a
/// mutex and is safe to run concurrently with recording: every event field
/// is individually atomic, so a racing read sees a possibly-torn but
/// well-defined event, never UB (TSan-clean by construction).
///
/// Span names must have static storage duration (string literals): the
/// ring stores the pointer, not a copy.
class Tracer {
 public:
  static constexpr size_t kRingCapacity = 8192;

  /// The process-wide tracer every ESD_TRACE_SPAN records into.
  static Tracer& Global();

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Records one completed span on the calling thread's ring. A nonzero
  /// `id` is exported as args.rid — the join key that groups one request's
  /// spans across threads and batches (see obs/request_context.h).
  void RecordComplete(const char* name, uint64_t start_ns, uint64_t dur_ns,
                      uint64_t id = 0);

  /// Names the calling thread's track in the exported trace (defaults to
  /// "thread-<tid>" in registration order; the first registering thread
  /// is tid 0).
  void SetCurrentThreadName(std::string name);

  /// Chrome trace_event JSON: {"traceEvents":[...]} with one ph:"M"
  /// thread_name metadata event per thread and ph:"X" complete events.
  /// ts/dur are microseconds on the steady clock.
  std::string ChromeTraceJson() const;

  /// Writes ChromeTraceJson() to `path`; false (with *error filled when
  /// given) on IO failure.
  bool WriteChromeTrace(const std::string& path, std::string* error = nullptr);

  /// Total spans recorded since start or Clear(), across all threads
  /// (monotonic; counts events already overwritten in a full ring).
  uint64_t NumEventsRecorded() const;

  /// Drops all recorded events (thread registrations and names survive).
  /// Test isolation only — concurrent recorders may interleave.
  void Clear();

 private:
  struct Event {
    std::atomic<const char*> name{nullptr};
    std::atomic<uint64_t> start_ns{0};
    std::atomic<uint64_t> dur_ns{0};
    std::atomic<uint64_t> id{0};  // 0 = no request association
  };

  struct ThreadBuffer {
    uint32_t tid = 0;
    std::string thread_name;  // guarded by Tracer::mu_
    std::array<Event, kRingCapacity> events;
    std::atomic<uint64_t> head{0};
  };

  ThreadBuffer& CurrentBuffer();

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;  // guarded by mu_
  std::atomic<bool> enabled_{true};
};

/// RAII span: times its own scope and records into the calling thread's
/// ring on destruction. `name` must be a string literal (or otherwise
/// outlive the tracer). Prefer the ESD_TRACE_SPAN macro, which vanishes
/// under ESD_OBS=OFF.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(Tracer::Global().enabled() ? name : nullptr),
        start_ns_(name_ ? MonotonicNanos() : 0) {}
  ~TraceSpan() {
    if (name_ != nullptr) {
      Tracer::Global().RecordComplete(name_, start_ns_,
                                      MonotonicNanos() - start_ns_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  uint64_t start_ns_;
};

#define ESD_OBS_CONCAT_INNER(a, b) a##b
#define ESD_OBS_CONCAT(a, b) ESD_OBS_CONCAT_INNER(a, b)
#define ESD_TRACE_SPAN(name) \
  ::esd::obs::TraceSpan ESD_OBS_CONCAT(esd_trace_span_, __LINE__)(name)

#else  // !ESD_OBS_TRACING

/// Compiled-out stub: same API, every member an inline no-op, export
/// reports that tracing is unavailable.
class Tracer {
 public:
  static constexpr size_t kRingCapacity = 0;

  static Tracer& Global() {
    static Tracer t;
    return t;
  }

  void SetEnabled(bool) {}
  bool enabled() const { return false; }
  void RecordComplete(const char*, uint64_t, uint64_t, uint64_t = 0) {}
  void SetCurrentThreadName(std::string) {}
  std::string ChromeTraceJson() const { return "{\"traceEvents\":[]}"; }
  bool WriteChromeTrace(const std::string&, std::string* error = nullptr) {
    if (error != nullptr) *error = "tracing compiled out (ESD_OBS=OFF)";
    return false;
  }
  uint64_t NumEventsRecorded() const { return 0; }
  void Clear() {}
};

class TraceSpan {
 public:
  explicit TraceSpan(const char*) {}
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

#define ESD_TRACE_SPAN(name) \
  do {                       \
  } while (false)

#endif  // ESD_OBS_TRACING

/// Times a sequence of mutually exclusive phases (an index build, a load
/// run): Begin("build.orientation") ... Begin("build.clique_enum") ...
/// implicitly ends the previous phase; destruction ends the last one.
///
/// Each finished phase (a) adds its elapsed seconds to the registry gauge
/// `esd_phase_<sanitized name>_seconds` — present in both ESD_OBS modes,
/// this is what fig6's per-phase JSON breakdown reads — and (b) records a
/// trace span under the phase name when tracing is compiled in.
class PhaseSeries {
 public:
  /// Phases accumulate into `registry` (the process-wide registry by
  /// default, so concurrent builds sum — benches diff before/after).
  explicit PhaseSeries(MetricRegistry* registry = nullptr);
  ~PhaseSeries();
  PhaseSeries(const PhaseSeries&) = delete;
  PhaseSeries& operator=(const PhaseSeries&) = delete;

  /// Ends the current phase (if any) and starts one named `phase`, which
  /// must be a string literal (it may be retained for span export).
  void Begin(const char* phase);

  /// Ends the current phase without starting another.
  void End();

 private:
  MetricRegistry* registry_;
  const char* current_ = nullptr;
  uint64_t start_ns_ = 0;
};

}  // namespace esd::obs

#endif  // ESD_OBS_TRACE_H_
