#ifndef ESD_OBS_REQUEST_CONTEXT_H_
#define ESD_OBS_REQUEST_CONTEXT_H_

/// Request-scoped telemetry context: a 64-bit request id minted at
/// admission plus a per-stage attribution breakdown, carried with the
/// request through tau-batching, the result cache, slab execution, and the
/// reply. Plain data in both ESD_OBS modes — only span *recording* is
/// compiled out under -DESD_OBS=OFF (mirroring PhaseSeries): the stage
/// timestamps also feed registry histograms and the slow-query log, which
/// stay available in both modes.
///
/// The request id doubles as the trace id: every span a request emits
/// (req.queue_wait, req.slab_scan, ...) carries it in the Chrome trace's
/// args.rid, so one request's spans join across threads and batches even
/// when it was served inside a batch with other requests.

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace esd::obs {

/// Where a request's wall time went, end to end. Values index the
/// RequestContext::stage_ns array and the esd_serve_stage_* histograms.
enum class Stage : uint8_t {
  kQueueWait = 0,     ///< admission -> the serving batch started draining
  kBatchFormation,    ///< batch start -> this request's turn (sort, pin,
                      ///< earlier requests of the same batch)
  kCacheLookup,       ///< intra-batch dedup probe + result-cache lookup
  kSlabScan,          ///< engine execution: slab prefix scan (or the whole
                      ///< engine query on non-frozen paths)
  kPaddingScan,       ///< zero-padding walk over live edges (deep k)
  kMerge,             ///< answer assembly: dedup/hit copy, cache insert
};

inline constexpr size_t kNumStages = 6;

constexpr const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kBatchFormation:
      return "batch_formation";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kSlabScan:
      return "slab_scan";
    case Stage::kPaddingScan:
      return "padding_scan";
    case Stage::kMerge:
      return "merge";
  }
  return "unknown";
}

/// Span names for per-request trace events, one per stage. Static storage
/// (the tracer ring stores the pointer), indexed like stage_ns.
constexpr const char* StageSpanName(Stage stage) {
  switch (stage) {
    case Stage::kQueueWait:
      return "req.queue_wait";
    case Stage::kBatchFormation:
      return "req.batch_formation";
    case Stage::kCacheLookup:
      return "req.cache_lookup";
    case Stage::kSlabScan:
      return "req.slab_scan";
    case Stage::kPaddingScan:
      return "req.padding_scan";
    case Stage::kMerge:
      return "req.merge";
  }
  return "req.unknown";
}

/// How the result cache (and intra-batch dedup ahead of it) disposed of a
/// request. kNone = executed with caching off or unavailable.
enum class CacheOutcome : uint8_t {
  kNone = 0,  ///< engine executed; no cache configured for this path
  kHit,       ///< answered from the epoch-keyed result cache
  kMiss,      ///< engine executed; answer inserted into the cache
  kDedup,     ///< copied from an identical request earlier in the batch
};

constexpr const char* CacheOutcomeName(CacheOutcome outcome) {
  switch (outcome) {
    case CacheOutcome::kNone:
      return "none";
    case CacheOutcome::kHit:
      return "hit";
    case CacheOutcome::kMiss:
      return "miss";
    case CacheOutcome::kDedup:
      return "dedup";
  }
  return "unknown";
}

/// Per-request telemetry carried from Submit() to the response. Plain
/// copyable data; all mutation happens single-threaded (the admitting
/// thread, then exactly one serving worker).
struct RequestContext {
  /// Process-unique, never 0 once minted. Doubles as the trace id.
  uint64_t request_id = 0;
  /// Steady-clock nanos at admission (MonotonicNanos basis).
  uint64_t admit_ns = 0;
  /// Engine epoch the request was served from (0 for static engines and
  /// legacy provider mode) — the refreeze stamp for live serving.
  uint64_t epoch = 0;
  CacheOutcome cache = CacheOutcome::kNone;
  /// Wall nanos attributed to each stage; see Stage for semantics.
  /// queue_wait + batch_formation == the response's queue_us; the
  /// remaining stages partition exec_us.
  uint64_t stage_ns[kNumStages] = {};

  void Charge(Stage stage, uint64_t ns) {
    stage_ns[static_cast<size_t>(stage)] += ns;
  }
  uint64_t StageNanos(Stage stage) const {
    return stage_ns[static_cast<size_t>(stage)];
  }
  double StageMicros(Stage stage) const {
    return static_cast<double>(StageNanos(stage)) * 1e-3;
  }
  /// Sum over all stages — the attributed share of the request's total.
  uint64_t AttributedNanos() const {
    uint64_t total = 0;
    for (size_t i = 0; i < kNumStages; ++i) total += stage_ns[i];
    return total;
  }

  /// Mints the next process-unique request id (wait-free, starts at 1).
  static uint64_t MintId() {
    static std::atomic<uint64_t> next{1};
    return next.fetch_add(1, std::memory_order_relaxed);
  }
};

}  // namespace esd::obs

#endif  // ESD_OBS_REQUEST_CONTEXT_H_
