#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace esd::obs {

#if ESD_OBS_TRACING

namespace {

void AppendJsonEscaped(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

void AppendMicros(std::string* out, uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out->append(buf);
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // never destroyed: threads may
  return *tracer;                        // record during static teardown
}

Tracer::ThreadBuffer& Tracer::CurrentBuffer() {
  // The shared_ptr in buffers_ keeps the ring alive past thread exit, so
  // a trace exported after joins still holds worker spans.
  thread_local ThreadBuffer* buffer = [this] {
    auto buf = std::make_shared<ThreadBuffer>();
    std::lock_guard<std::mutex> lock(mu_);
    buf->tid = static_cast<uint32_t>(buffers_.size());
    buffers_.push_back(buf);
    return buf.get();
  }();
  return *buffer;
}

void Tracer::RecordComplete(const char* name, uint64_t start_ns,
                            uint64_t dur_ns, uint64_t id) {
  ThreadBuffer& buf = CurrentBuffer();
  const uint64_t h = buf.head.load(std::memory_order_relaxed);
  Event& e = buf.events[h % kRingCapacity];
  e.start_ns.store(start_ns, std::memory_order_relaxed);
  e.dur_ns.store(dur_ns, std::memory_order_relaxed);
  e.id.store(id, std::memory_order_relaxed);
  e.name.store(name, std::memory_order_relaxed);
  buf.head.store(h + 1, std::memory_order_release);
}

void Tracer::SetCurrentThreadName(std::string name) {
  ThreadBuffer& buf = CurrentBuffer();
  std::lock_guard<std::mutex> lock(mu_);
  buf.thread_name = std::move(name);
}

std::string Tracer::ChromeTraceJson() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    std::string tname = buf->thread_name.empty()
                            ? "thread-" + std::to_string(buf->tid)
                            : buf->thread_name;
    if (!first) out.push_back(',');
    first = false;
    out.append(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(buf->tid) +
        ",\"name\":\"thread_name\",\"args\":{\"name\":\"");
    AppendJsonEscaped(&out, tname);
    out.append("\"}}");
    const uint64_t head = buf->head.load(std::memory_order_acquire);
    const uint64_t n = std::min<uint64_t>(head, kRingCapacity);
    for (uint64_t i = head - n; i < head; ++i) {
      const Event& e = buf->events[i % kRingCapacity];
      const char* name = e.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;  // slot being written right now
      out.append(",{\"ph\":\"X\",\"pid\":1,\"tid\":" +
                 std::to_string(buf->tid) + ",\"name\":\"");
      AppendJsonEscaped(&out, name);
      out.append("\",\"ts\":");
      AppendMicros(&out, e.start_ns.load(std::memory_order_relaxed));
      out.append(",\"dur\":");
      AppendMicros(&out, e.dur_ns.load(std::memory_order_relaxed));
      const uint64_t id = e.id.load(std::memory_order_relaxed);
      if (id != 0) {
        // The request id is the trace id: filtering on rid in Perfetto
        // reassembles one request's timeline across workers and batches.
        out.append(",\"args\":{\"rid\":" + std::to_string(id) + "}");
      }
      out.append("}");
    }
  }
  out.append("]}");
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path, std::string* error) {
  const std::string json = ChromeTraceJson();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  const bool ok =
      std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!(ok && closed)) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

uint64_t Tracer::NumEventsRecorded() const {
  uint64_t total = 0;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    total += buf->head.load(std::memory_order_acquire);
  }
  return total;
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& buf : buffers_) {
    for (auto& e : buf->events) {
      e.name.store(nullptr, std::memory_order_relaxed);
    }
    buf->head.store(0, std::memory_order_release);
  }
}

#endif  // ESD_OBS_TRACING

PhaseSeries::PhaseSeries(MetricRegistry* registry)
    : registry_(registry != nullptr ? registry : &MetricRegistry::Global()) {}

PhaseSeries::~PhaseSeries() { End(); }

void PhaseSeries::Begin(const char* phase) {
  End();
  current_ = phase;
  start_ns_ = MonotonicNanos();
}

void PhaseSeries::End() {
  if (current_ == nullptr) return;
  const uint64_t dur_ns = MonotonicNanos() - start_ns_;
  Tracer::Global().RecordComplete(current_, start_ns_, dur_ns);
  registry_
      ->GetGauge("esd_phase_" + MetricRegistry::SanitizeName(current_) +
                     "_seconds",
                 "Cumulative seconds spent in this pipeline phase")
      .Add(static_cast<double>(dur_ns) * 1e-9);
  current_ = nullptr;
}

}  // namespace esd::obs
