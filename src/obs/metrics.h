#ifndef ESD_OBS_METRICS_H_
#define ESD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/histogram.h"

namespace esd::obs {

/// Monotonic counter. Inc() is one relaxed atomic add; readers see a
/// racy-but-monotonic value — the standard serving-metrics contract.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins double gauge (Set) that also supports accumulation
/// (Add, a CAS loop — gauges are written from cold paths only).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double d) {
    double seen = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(seen, seen + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0};
};

/// Registry-hosted wrapper of the log-scale LatencyHistogram: exported as
/// a Prometheus summary (p50/p95/p99 quantiles + _sum + _count).
class Histogram {
 public:
  void RecordNanos(uint64_t ns) { h_.RecordNanos(ns); }
  void RecordMicros(double us) { h_.RecordMicros(us); }
  LatencyHistogram::Snapshot Snap() const { return h_.Snap(); }

 private:
  LatencyHistogram h_;
};

/// Process-wide (or locally instantiated) home for named metrics.
///
/// GetCounter/GetGauge/GetHistogram register on first use and return a
/// reference that stays valid for the registry's lifetime, so hot paths
/// resolve a metric once (e.g. into a function-local static) and then
/// touch only its atomics. Registration takes a mutex; recording never
/// does. Names are sanitized to the Prometheus charset
/// ([a-zA-Z0-9_:], leading digit prefixed) at registration.
///
/// Exporters:
///   * PrometheusText() — text exposition format (counters, gauges, and
///     histograms as summaries), sorted by name, parseable by any
///     Prometheus scraper. Served by esd_server's METRICS command.
///   * JsonFields()     — the bench harness's key/value dialect (no
///     surrounding braces), appendable to a '{"bench":...' line.
///
/// Asking for an existing name with a different type is a programming
/// error; release builds return a process-wide dummy metric (recorded
/// values go nowhere) instead of corrupting the registered one.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// The process-wide registry every subsystem instruments by default.
  static MetricRegistry& Global();

  Counter& GetCounter(std::string_view name, std::string_view help = "");
  Gauge& GetGauge(std::string_view name, std::string_view help = "");
  Histogram& GetHistogram(std::string_view name, std::string_view help = "");

  /// Point reads by (sanitized) name; 0 when absent or of another type.
  uint64_t CounterValue(std::string_view name) const;
  double GaugeValue(std::string_view name) const;

  size_t NumMetrics() const;

  /// One scalar point of the registry's current state, as consumed by the
  /// MetricHistory time-series ring. `monotone` marks values whose
  /// between-sample deltas are meaningful rates (counters, histogram
  /// _count/_sum); gauges are levels.
  struct Sample {
    std::string name;
    double value = 0;
    bool monotone = false;
  };

  /// Flattens every metric to scalar samples, sorted by name: counters and
  /// gauges one sample each, histograms two monotone samples
  /// (<name>_count, <name>_sum — quantiles are not rateable and are left
  /// to PrometheusText()).
  std::vector<Sample> Samples() const;

  std::string PrometheusText() const;
  std::string JsonFields() const;

  /// Prometheus metric-name sanitization applied at registration.
  static std::string SanitizeName(std::string_view name);

 private:
  enum class Type { kCounter, kGauge, kHistogram };
  struct Slot {
    Type type;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Slot& GetSlot(std::string_view name, std::string_view help, Type type,
                bool* type_mismatch);

  mutable std::mutex mu_;
  std::map<std::string, Slot, std::less<>> slots_;
};

}  // namespace esd::obs

#endif  // ESD_OBS_METRICS_H_
