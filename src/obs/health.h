#ifndef ESD_OBS_HEALTH_H_
#define ESD_OBS_HEALTH_H_

#include <cstdint>

#include "obs/metrics.h"

namespace esd::obs {

/// Shared health vocabulary of the serving stack (DESIGN.md §10):
///   kOk        — full service: reads and durable writes.
///   kDegraded  — serving continues but something is being retried behind
///                a breaker (e.g. refreeze failures: readers fall behind
///                the writer, staleness grows).
///   kReadOnly  — writes are rejected with a typed error; reads keep being
///                served from the last good epoch (e.g. WAL retries
///                exhausted). Heals back to kOk once a probe write lands.
/// Ordered by severity so components combine with WorseHealth().
enum class HealthState : uint8_t { kOk = 0, kDegraded = 1, kReadOnly = 2 };

inline const char* HealthStateName(HealthState s) {
  switch (s) {
    case HealthState::kOk:
      return "ok";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kReadOnly:
      return "read-only";
  }
  return "?";
}

inline HealthState WorseHealth(HealthState a, HealthState b) {
  return static_cast<uint8_t>(a) >= static_cast<uint8_t>(b) ? a : b;
}

/// Pushes the esd_health_* gauges: the numeric state (0 ok / 1 degraded /
/// 2 read-only) plus one 0/1 indicator per state, the Prometheus-friendly
/// shape for alerting rules.
inline void ExportHealth(MetricRegistry& registry, HealthState s) {
  registry.GetGauge("esd_health_state",
                    "serving health: 0 ok, 1 degraded, 2 read-only")
      .Set(static_cast<double>(static_cast<uint8_t>(s)));
  registry.GetGauge("esd_health_ok", "1 when health is ok")
      .Set(s == HealthState::kOk ? 1 : 0);
  registry.GetGauge("esd_health_degraded", "1 when health is degraded")
      .Set(s == HealthState::kDegraded ? 1 : 0);
  registry.GetGauge("esd_health_read_only", "1 when health is read-only")
      .Set(s == HealthState::kReadOnly ? 1 : 0);
}

}  // namespace esd::obs

#endif  // ESD_OBS_HEALTH_H_
