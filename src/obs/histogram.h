#ifndef ESD_OBS_HISTOGRAM_H_
#define ESD_OBS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>

namespace esd::obs {

/// Lock-free log-scale latency histogram (HDR-style: power-of-two major
/// buckets, 8 linear sub-buckets each, so any recorded value lands in a
/// bucket within 12.5% of its true nanosecond latency). Record() is a
/// single relaxed atomic increment, safe from any number of threads;
/// Snap() reads a racy-but-consistent-enough snapshot for export, which is
/// the usual contract for serving metrics.
///
/// Formerly serve/metrics.h's private histogram; now the registry-wide
/// histogram type (obs::Histogram wraps it, serve::ServiceMetrics records
/// through it).
class LatencyHistogram {
 public:
  /// Percentiles and moments of one histogram, in microseconds. A snapshot
  /// of an empty histogram is all zeros — never NaN (count == 0 guards
  /// every division).
  struct Snapshot {
    uint64_t count = 0;
    double p50_us = 0;
    double p95_us = 0;
    double p99_us = 0;
    double max_us = 0;
    double mean_us = 0;
    /// Sum of all recorded values, in microseconds (Prometheus _sum).
    double sum_us = 0;
  };

  /// Values above this saturate instead of indexing past the bucket array
  /// or overflowing the uint64 cast (~146 years; nothing legitimate gets
  /// close).
  static constexpr uint64_t kSaturationNs = uint64_t{1} << 62;

  void RecordNanos(uint64_t ns) {
    ns = std::min(ns, kSaturationNs);
    buckets_[BucketOf(ns)].fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
    uint64_t seen = max_ns_.load(std::memory_order_relaxed);
    while (ns > seen &&
           !max_ns_.compare_exchange_weak(seen, ns,
                                          std::memory_order_relaxed)) {
    }
  }

  /// Saturating: negative, NaN, and sub-nanosecond inputs record as 0;
  /// values whose nanosecond image exceeds kSaturationNs (including +inf)
  /// clamp to it rather than hitting the UB of an out-of-range
  /// double->uint64 cast.
  void RecordMicros(double us) {
    if (!(us > 0)) {
      RecordNanos(0);
      return;
    }
    const double ns = us * 1e3;
    RecordNanos(ns >= static_cast<double>(kSaturationNs)
                    ? kSaturationNs
                    : static_cast<uint64_t>(ns));
  }

  Snapshot Snap() const {
    std::array<uint64_t, kBuckets> counts;
    uint64_t total = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      counts[b] = buckets_[b].load(std::memory_order_relaxed);
      total += counts[b];
    }
    Snapshot s;
    s.count = total;
    if (total == 0) return s;
    s.p50_us = PercentileUs(counts, total, 0.50);
    s.p95_us = PercentileUs(counts, total, 0.95);
    s.p99_us = PercentileUs(counts, total, 0.99);
    s.max_us =
        static_cast<double>(max_ns_.load(std::memory_order_relaxed)) * 1e-3;
    s.sum_us =
        static_cast<double>(sum_ns_.load(std::memory_order_relaxed)) * 1e-3;
    s.mean_us = s.sum_us / static_cast<double>(total);
    return s;
  }

 private:
  static constexpr int kSubBits = 3;
  static constexpr size_t kSub = size_t{1} << kSubBits;  // 8 sub-buckets
  // Largest bucket index is reached at ns = 2^64 - 1 (bit width 64):
  // (64 - 1 - kSubBits + 1) * kSub + (kSub - 1) = 495.
  static constexpr size_t kBuckets = (64 - kSubBits) * kSub + kSub;

  static size_t BucketOf(uint64_t ns) {
    if (ns < kSub) return static_cast<size_t>(ns);
    const int shift = std::bit_width(ns) - 1 - kSubBits;
    return static_cast<size_t>(shift + 1) * kSub +
           static_cast<size_t>((ns >> shift) & (kSub - 1));
  }

  /// Representative latency of bucket `b` (its midpoint), in microseconds.
  static double BucketMidUs(size_t b) {
    if (b < kSub) return static_cast<double>(b) * 1e-3;
    const int shift = static_cast<int>(b / kSub) - 1;
    const double lo = std::ldexp(static_cast<double>(kSub + b % kSub), shift);
    const double width = std::ldexp(1.0, shift);
    return (lo + width * 0.5) * 1e-3;
  }

  static double PercentileUs(const std::array<uint64_t, kBuckets>& counts,
                             uint64_t total, double p) {
    const uint64_t rank =
        std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(
                                  p * static_cast<double>(total))));
    uint64_t seen = 0;
    for (size_t b = 0; b < kBuckets; ++b) {
      seen += counts[b];
      if (seen >= rank) return BucketMidUs(b);
    }
    return BucketMidUs(kBuckets - 1);
  }

  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> sum_ns_{0};
  std::atomic<uint64_t> max_ns_{0};
};

}  // namespace esd::obs

#endif  // ESD_OBS_HISTOGRAM_H_
