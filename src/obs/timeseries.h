#ifndef ESD_OBS_TIMESERIES_H_
#define ESD_OBS_TIMESERIES_H_

/// Metrics time-series ring: periodic snapshots of a MetricRegistry with
/// delta/rate computation, so a scrape gap no longer means blindness — the
/// server itself remembers the last `capacity * interval` of qps,
/// hit-rate, and refreeze-lag trends and serves them via esd_server's
/// HISTORY command.
///
/// Retention math: the ring keeps `capacity` samples taken every
/// `interval` (default 120 x 1s = a 2-minute horizon). Memory is
/// capacity x columns x 8 bytes plus one interned name table — ~100
/// metrics at the default settings cost under 100 KiB.
///
/// Works in both ESD_OBS modes (the registry is never compiled out).
/// Thread-safe: SampleNow() and the readers take one mutex; the optional
/// background sampler is a single thread woken every interval.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace esd::obs {

class MetricHistory {
 public:
  struct Options {
    /// Ring depth in samples; horizon = capacity * interval.
    size_t capacity = 120;
    /// Background sampling period (Start()/Stop() sampler).
    std::chrono::milliseconds interval{1000};
    /// Called right before each snapshot so push-style gauges are fresh
    /// (e.g. LiveEsdIndex::ExportMetrics). May be empty.
    std::function<void()> pre_sample;
  };

  explicit MetricHistory(MetricRegistry& registry)
      : MetricHistory(registry, Options{}) {}
  MetricHistory(MetricRegistry& registry, const Options& options);
  ~MetricHistory();

  MetricHistory(const MetricHistory&) = delete;
  MetricHistory& operator=(const MetricHistory&) = delete;

  /// Starts/stops the background sampler thread (idempotent). SampleNow()
  /// remains callable either way — tests drive the ring manually.
  void Start();
  void Stop();

  /// Takes one snapshot of the registry into the ring.
  void SampleNow();

  size_t NumSamples() const;
  size_t capacity() const { return options_.capacity; }
  std::chrono::milliseconds interval() const { return options_.interval; }

  /// The newest `max_intervals` between-sample deltas, oldest first, one
  /// JSON object per interval:
  ///   {"age_s":..,"dt_s":..,"qps":..,"cache_hit_rate":..,
  ///    "rates":{"<counter>":per_s,...},"gauges":{"<gauge>":level,...}}
  /// "rates" holds monotone samples with a nonzero delta; "gauges" holds
  /// levels that changed across the interval. qps and cache_hit_rate are
  /// always present (derived from esd_serve_completed_total and
  /// esd_cache_{hits,misses}_total; 0 when those metrics are absent).
  /// Needs >= 2 samples; returns empty otherwise.
  std::vector<std::string> IntervalsJson(size_t max_intervals) const;

  /// Prometheus-friendly dump of the most recent interval's rates as
  /// recording-rule-style gauges (`<name>:rate_per_s`), plus the derived
  /// qps/hit-rate series. Empty string until two samples exist.
  std::string RatesPrometheus() const;

 private:
  struct Sample {
    uint64_t taken_ns = 0;
    /// Dense row aligned with names_; columns added after this sample was
    /// taken read as their first observed value (delta 0).
    std::vector<double> values;
  };

  void SamplerLoop();
  size_t ColumnIndexLocked(const std::string& name, bool monotone);

  MetricRegistry& registry_;
  const Options options_;

  mutable std::mutex mu_;
  std::vector<std::string> names_;          // column id -> metric name
  std::vector<uint8_t> monotone_;           // column id -> rateable
  std::unordered_map<std::string, size_t> index_;  // name -> column id
  std::deque<Sample> ring_;

  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  std::thread sampler_;
};

}  // namespace esd::obs

#endif  // ESD_OBS_TIMESERIES_H_
