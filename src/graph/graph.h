#ifndef ESD_GRAPH_GRAPH_H_
#define ESD_GRAPH_GRAPH_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace esd::graph {

/// Vertex id. Vertices of an n-vertex graph are 0 .. n-1.
using VertexId = uint32_t;

/// Dense edge id; edges of an m-edge graph are 0 .. m-1 in lexicographic
/// (u, v) order with u < v.
using EdgeId = uint32_t;

/// Sentinel for "no edge".
inline constexpr EdgeId kNoEdge = UINT32_MAX;

/// An undirected edge with normalized endpoints (u < v).
struct Edge {
  VertexId u = 0;
  VertexId v = 0;

  friend bool operator==(const Edge&, const Edge&) = default;
  friend auto operator<=>(const Edge&, const Edge&) = default;
};

/// Normalizes an endpoint pair to u < v.
inline Edge MakeEdge(VertexId a, VertexId b) {
  return a < b ? Edge{a, b} : Edge{b, a};
}

/// Immutable simple undirected graph in CSR (compressed sparse row) form.
///
/// Neighbor lists are sorted by vertex id, and each adjacency slot also
/// records the dense id of the corresponding undirected edge, so algorithms
/// can map (u, v) -> EdgeId during merges without hashing.
///
/// Self-loops and parallel edges are rejected at construction (the paper's
/// model is a simple graph).
class Graph {
 public:
  Graph() = default;

  /// Builds a graph with `num_vertices` vertices from an edge list.
  /// Self-loops are dropped and duplicate edges collapsed. Endpoints must be
  /// < num_vertices.
  static Graph FromEdges(VertexId num_vertices, std::vector<Edge> edges);

  /// Number of vertices.
  VertexId NumVertices() const { return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1); }

  /// Number of undirected edges.
  EdgeId NumEdges() const { return static_cast<EdgeId>(edges_.size()); }

  /// Degree of `u`.
  uint32_t Degree(VertexId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Maximum degree over all vertices (0 for the empty graph).
  uint32_t MaxDegree() const { return max_degree_; }

  /// Sorted neighbor list of `u`.
  std::span<const VertexId> Neighbors(VertexId u) const {
    return {adj_vertex_.data() + offsets_[u],
            adj_vertex_.data() + offsets_[u + 1]};
  }

  /// Edge ids parallel to Neighbors(u): IncidentEdges(u)[i] is the id of the
  /// undirected edge {u, Neighbors(u)[i]}.
  std::span<const EdgeId> IncidentEdges(VertexId u) const {
    return {adj_edge_.data() + offsets_[u], adj_edge_.data() + offsets_[u + 1]};
  }

  /// True if {u, v} is an edge.
  bool HasEdge(VertexId u, VertexId v) const {
    return FindEdge(u, v) != kNoEdge;
  }

  /// Dense id of edge {u, v}, or kNoEdge if absent.
  EdgeId FindEdge(VertexId u, VertexId v) const;

  /// Endpoints of edge `e` (u < v).
  const Edge& EdgeAt(EdgeId e) const { return edges_[e]; }

  /// The full edge list, sorted lexicographically; EdgeAt(i) == Edges()[i].
  const std::vector<Edge>& Edges() const { return edges_; }

  /// min{d(u), d(v)} for edge `e` — the paper's min-degree bound base.
  uint32_t MinDegree(EdgeId e) const {
    const Edge& uv = edges_[e];
    return std::min(Degree(uv.u), Degree(uv.v));
  }

 private:
  std::vector<uint64_t> offsets_;     // size n+1
  std::vector<VertexId> adj_vertex_;  // size 2m, sorted per vertex
  std::vector<EdgeId> adj_edge_;      // size 2m, parallel to adj_vertex_
  std::vector<Edge> edges_;           // size m, lexicographically sorted
  uint32_t max_degree_ = 0;
};

/// Sorted intersection of the neighbor lists of u and v — the common
/// neighborhood N(uv) (Section II). Output is sorted by vertex id.
std::vector<VertexId> CommonNeighbors(const Graph& g, VertexId u, VertexId v);

/// Number of common neighbors |N(u) ∩ N(v)| without materializing the list.
uint32_t CountCommonNeighbors(const Graph& g, VertexId u, VertexId v);

}  // namespace esd::graph

#endif  // ESD_GRAPH_GRAPH_H_
