#include "graph/connectivity.h"

#include <algorithm>

#include "util/flat_map.h"

namespace esd::graph {

Components ConnectedComponents(const Graph& g) {
  const VertexId n = g.NumVertices();
  Components out;
  out.label.assign(n, UINT32_MAX);
  std::vector<VertexId> queue;
  for (VertexId s = 0; s < n; ++s) {
    if (out.label[s] != UINT32_MAX) continue;
    uint32_t c = static_cast<uint32_t>(out.size.size());
    out.size.push_back(0);
    out.label[s] = c;
    queue.assign(1, s);
    while (!queue.empty()) {
      VertexId u = queue.back();
      queue.pop_back();
      ++out.size[c];
      for (VertexId w : g.Neighbors(u)) {
        if (out.label[w] == UINT32_MAX) {
          out.label[w] = c;
          queue.push_back(w);
        }
      }
    }
  }
  return out;
}

std::vector<uint32_t> InducedComponentSizes(
    const Graph& g, const std::vector<VertexId>& vertices) {
  // Map each subset vertex to a local slot; BFS over the induced subgraph by
  // intersecting global adjacency with the (sorted) subset.
  const size_t k = vertices.size();
  std::vector<uint32_t> sizes;
  if (k == 0) return sizes;

  util::FlatMap<VertexId, uint32_t> local(k);
  for (uint32_t i = 0; i < k; ++i) local.Insert(vertices[i], i);

  std::vector<uint8_t> visited(k, 0);
  std::vector<uint32_t> queue;
  for (uint32_t s = 0; s < k; ++s) {
    if (visited[s]) continue;
    visited[s] = 1;
    queue.assign(1, s);
    uint32_t comp_size = 0;
    while (!queue.empty()) {
      uint32_t li = queue.back();
      queue.pop_back();
      ++comp_size;
      VertexId u = vertices[li];
      auto nbrs = g.Neighbors(u);
      // Iterate the shorter side: either u's global neighbors probed into
      // the subset map, or (if the subset is smaller) the subset probed into
      // u's sorted adjacency.
      if (nbrs.size() <= k) {
        for (VertexId w : nbrs) {
          const uint32_t* lj = local.Find(w);
          if (lj != nullptr && !visited[*lj]) {
            visited[*lj] = 1;
            queue.push_back(*lj);
          }
        }
      } else {
        for (uint32_t lj = 0; lj < k; ++lj) {
          if (visited[lj]) continue;
          VertexId w = vertices[lj];
          if (std::binary_search(nbrs.begin(), nbrs.end(), w)) {
            visited[lj] = 1;
            queue.push_back(lj);
          }
        }
      }
    }
    sizes.push_back(comp_size);
  }
  return sizes;
}

bool IsConnected(const Graph& g) {
  if (g.NumVertices() <= 1) return true;
  return ConnectedComponents(g).NumComponents() == 1;
}

}  // namespace esd::graph
