#ifndef ESD_GRAPH_CONNECTIVITY_H_
#define ESD_GRAPH_CONNECTIVITY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace esd::graph {

/// Result of a connected-components decomposition.
struct Components {
  /// Component label per vertex, 0 .. num_components-1.
  std::vector<uint32_t> label;
  /// Size of each component, indexed by label.
  std::vector<uint32_t> size;

  size_t NumComponents() const { return size.size(); }
};

/// Connected components of the whole graph via BFS. O(n + m).
Components ConnectedComponents(const Graph& g);

/// Connected components of the subgraph induced by `vertices` (which must
/// be sorted, duplicate-free vertex ids). Runs BFS restricted to the subset
/// using sorted-adjacency intersections. Returns sizes only, in no
/// particular order. This is the primitive behind the BFS-based structural
/// diversity computation (Algorithm 1, line 13).
std::vector<uint32_t> InducedComponentSizes(
    const Graph& g, const std::vector<VertexId>& vertices);

/// True if the whole graph is connected (vacuously true when n <= 1).
bool IsConnected(const Graph& g);

}  // namespace esd::graph

#endif  // ESD_GRAPH_CONNECTIVITY_H_
