#ifndef ESD_GRAPH_DYNAMIC_GRAPH_H_
#define ESD_GRAPH_DYNAMIC_GRAPH_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace esd::graph {

/// Mutable simple undirected graph backed by per-vertex sorted neighbor
/// vectors — the substrate of the index maintenance algorithms (Section V).
///
/// Insert/erase of an edge costs O(d(u) + d(v)); membership tests and
/// common-neighbor merges are binary search / linear merges over the sorted
/// lists. Vertices are fixed at construction (the paper treats vertex
/// updates as edge-update sequences).
class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// An edgeless graph on n vertices.
  explicit DynamicGraph(VertexId num_vertices) : adj_(num_vertices) {}

  /// Copies a static graph.
  explicit DynamicGraph(const Graph& g);

  VertexId NumVertices() const { return static_cast<VertexId>(adj_.size()); }
  uint64_t NumEdges() const { return num_edges_; }

  uint32_t Degree(VertexId u) const {
    return static_cast<uint32_t>(adj_[u].size());
  }

  /// Sorted neighbors of u. Invalidated by any mutation.
  std::span<const VertexId> Neighbors(VertexId u) const { return adj_[u]; }

  bool HasEdge(VertexId u, VertexId v) const;

  /// Appends an isolated vertex and returns its id (the paper treats
  /// vertex updates as edge-update sequences; this provides the vertex
  /// half).
  VertexId AddVertex() {
    adj_.emplace_back();
    return static_cast<VertexId>(adj_.size() - 1);
  }

  /// Inserts {u, v}; returns false if it already exists or u == v.
  bool InsertEdge(VertexId u, VertexId v);

  /// Erases {u, v}; returns false if absent.
  bool EraseEdge(VertexId u, VertexId v);

  /// Sorted common neighborhood N(uv) = N(u) ∩ N(v).
  std::vector<VertexId> CommonNeighbors(VertexId u, VertexId v) const;

  /// Materializes an immutable CSR snapshot.
  Graph Snapshot() const;

 private:
  std::vector<std::vector<VertexId>> adj_;
  uint64_t num_edges_ = 0;
};

}  // namespace esd::graph

#endif  // ESD_GRAPH_DYNAMIC_GRAPH_H_
