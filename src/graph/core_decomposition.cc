#include "graph/core_decomposition.h"

#include <algorithm>

namespace esd::graph {

CoreDecomposition ComputeCores(const Graph& g) {
  const VertexId n = g.NumVertices();
  CoreDecomposition out;
  out.core.assign(n, 0);
  out.order.reserve(n);
  if (n == 0) return out;

  // Bucket sort vertices by degree.
  const uint32_t md = g.MaxDegree();
  std::vector<uint32_t> deg(n);
  std::vector<uint32_t> bin(md + 2, 0);
  for (VertexId u = 0; u < n; ++u) {
    deg[u] = g.Degree(u);
    ++bin[deg[u]];
  }
  uint32_t start = 0;
  for (uint32_t d = 0; d <= md; ++d) {
    uint32_t cnt = bin[d];
    bin[d] = start;
    start += cnt;
  }
  std::vector<VertexId> vert(n);  // vertices sorted by current degree
  std::vector<uint32_t> pos(n);   // position of each vertex in vert
  for (VertexId u = 0; u < n; ++u) {
    pos[u] = bin[deg[u]];
    vert[pos[u]] = u;
    ++bin[deg[u]];
  }
  // Restore bin to bucket starts.
  for (uint32_t d = md; d >= 1; --d) bin[d] = bin[d - 1];
  bin[0] = 0;

  // Peel.
  for (uint32_t i = 0; i < n; ++i) {
    VertexId u = vert[i];
    out.core[u] = deg[u];
    out.degeneracy = std::max(out.degeneracy, deg[u]);
    out.order.push_back(u);
    for (VertexId w : g.Neighbors(u)) {
      if (deg[w] > deg[u]) {
        // Swap w to the front of its bucket, then shrink its degree.
        uint32_t dw = deg[w];
        uint32_t pw = pos[w];
        uint32_t pfirst = bin[dw];
        VertexId first = vert[pfirst];
        if (first != w) {
          vert[pw] = first;
          pos[first] = pw;
          vert[pfirst] = w;
          pos[w] = pfirst;
        }
        ++bin[dw];
        --deg[w];
      }
    }
  }
  return out;
}

uint32_t ArboricityLowerBound(const Graph& g) {
  if (g.NumVertices() <= 1) return 0;
  uint64_t m = g.NumEdges();
  uint64_t n = g.NumVertices();
  return static_cast<uint32_t>((m + n - 2) / (n - 1));
}

}  // namespace esd::graph
