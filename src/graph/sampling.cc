#include "graph/sampling.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/rng.h"

namespace esd::graph {

Graph SampleEdges(const Graph& g, double fraction, uint64_t seed) {
  util::Rng rng(seed);
  std::vector<Edge> kept;
  kept.reserve(static_cast<size_t>(g.NumEdges() * std::clamp(fraction, 0.0, 1.0)) + 1);
  for (const Edge& e : g.Edges()) {
    if (rng.NextBool(fraction)) kept.push_back(e);
  }
  return Graph::FromEdges(g.NumVertices(), std::move(kept));
}

Graph SampleVertices(const Graph& g, double fraction, uint64_t seed) {
  const VertexId n = g.NumVertices();
  util::Rng rng(seed);
  fraction = std::clamp(fraction, 0.0, 1.0);
  // Choose exactly round(fraction * n) vertices via a partial Fisher-Yates
  // shuffle for a stable sample size.
  VertexId keep = static_cast<VertexId>(fraction * n + 0.5);
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (VertexId i = 0; i < keep && n > 0; ++i) {
    VertexId j = i + static_cast<VertexId>(rng.NextBounded(n - i));
    std::swap(perm[i], perm[j]);
  }
  std::vector<VertexId> new_id(n, UINT32_MAX);
  std::vector<VertexId> chosen(perm.begin(), perm.begin() + keep);
  std::sort(chosen.begin(), chosen.end());
  for (VertexId i = 0; i < keep; ++i) new_id[chosen[i]] = i;

  std::vector<Edge> kept;
  for (const Edge& e : g.Edges()) {
    if (new_id[e.u] != UINT32_MAX && new_id[e.v] != UINT32_MAX) {
      kept.push_back(MakeEdge(new_id[e.u], new_id[e.v]));
    }
  }
  return Graph::FromEdges(keep, std::move(kept));
}

}  // namespace esd::graph
