#include "graph/io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "util/flat_map.h"

namespace esd::graph {

namespace {

bool ParseStream(std::istream& in, Graph* out, std::string* error) {
  std::vector<Edge> edges;
  util::FlatMap<uint64_t, VertexId> remap;
  VertexId next_id = 0;
  auto intern = [&](uint64_t raw) {
    auto [slot, inserted] = remap.Insert(raw, next_id);
    if (inserted) ++next_id;
    return *slot;
  };

  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#' || line[i] == '%') continue;
    std::istringstream ls(line.substr(i));
    uint64_t a = 0, b = 0;
    if (!(ls >> a >> b)) {
      if (error != nullptr) {
        *error = "malformed edge at line " + std::to_string(line_no);
      }
      return false;
    }
    edges.push_back(MakeEdge(intern(a), intern(b)));
  }
  *out = Graph::FromEdges(next_id, std::move(edges));
  return true;
}

}  // namespace

bool LoadEdgeList(const std::string& path, Graph* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  return ParseStream(in, out, error);
}

bool ParseEdgeList(const std::string& text, Graph* out, std::string* error) {
  std::istringstream in(text);
  return ParseStream(in, out, error);
}

bool SaveEdgeList(const Graph& g, const std::string& path,
                  std::string* error) {
  std::ofstream out(path);
  if (!out) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  out << "# n=" << g.NumVertices() << " m=" << g.NumEdges() << "\n";
  for (const Edge& e : g.Edges()) out << e.u << ' ' << e.v << '\n';
  out.flush();
  if (!out) {
    if (error != nullptr) *error = "write failed for " + path;
    return false;
  }
  return true;
}

}  // namespace esd::graph
