#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace esd::graph {

Graph Graph::FromEdges(VertexId num_vertices, std::vector<Edge> edges) {
  // Normalize, drop self-loops, sort, dedup.
  size_t out = 0;
  for (const Edge& e : edges) {
    if (e.u == e.v) continue;
    edges[out++] = MakeEdge(e.u, e.v);
  }
  edges.resize(out);
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  Graph g;
  g.edges_ = std::move(edges);
  const size_t n = num_vertices;
  const size_t m = g.edges_.size();

  std::vector<uint32_t> deg(n, 0);
  for (const Edge& e : g.edges_) {
    assert(e.u < num_vertices && e.v < num_vertices);
    ++deg[e.u];
    ++deg[e.v];
  }
  g.offsets_.assign(n + 1, 0);
  for (size_t u = 0; u < n; ++u) {
    g.offsets_[u + 1] = g.offsets_[u] + deg[u];
    g.max_degree_ = std::max(g.max_degree_, deg[u]);
  }
  g.adj_vertex_.resize(2 * m);
  g.adj_edge_.resize(2 * m);
  std::vector<uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const Edge& uv = g.edges_[e];
    g.adj_vertex_[cursor[uv.u]] = uv.v;
    g.adj_edge_[cursor[uv.u]++] = e;
    g.adj_vertex_[cursor[uv.v]] = uv.u;
    g.adj_edge_[cursor[uv.v]++] = e;
  }
  // Edge list is sorted lexicographically, and we appended in edge order, so
  // each vertex's higher-endpoint neighbors are already ascending; the
  // lower-endpoint entries (u as the larger endpoint) are also appended in
  // ascending first-endpoint order. The two runs interleave, so sort each
  // adjacency slice by neighbor id (stable small sort).
  for (size_t u = 0; u < n; ++u) {
    uint64_t lo = g.offsets_[u];
    uint64_t hi = g.offsets_[u + 1];
    // Sort (vertex, edge) jointly.
    std::vector<std::pair<VertexId, EdgeId>> tmp;
    tmp.reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) {
      tmp.emplace_back(g.adj_vertex_[i], g.adj_edge_[i]);
    }
    std::sort(tmp.begin(), tmp.end());
    for (uint64_t i = lo; i < hi; ++i) {
      g.adj_vertex_[i] = tmp[i - lo].first;
      g.adj_edge_[i] = tmp[i - lo].second;
    }
  }
  return g;
}

EdgeId Graph::FindEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices() || u == v) return kNoEdge;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kNoEdge;
  return IncidentEdges(u)[static_cast<size_t>(it - nbrs.begin())];
}

std::vector<VertexId> CommonNeighbors(const Graph& g, VertexId u, VertexId v) {
  std::vector<VertexId> out;
  auto nu = g.Neighbors(u);
  auto nv = g.Neighbors(v);
  out.reserve(std::min(nu.size(), nv.size()));
  size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      out.push_back(nu[i]);
      ++i;
      ++j;
    }
  }
  return out;
}

uint32_t CountCommonNeighbors(const Graph& g, VertexId u, VertexId v) {
  auto nu = g.Neighbors(u);
  auto nv = g.Neighbors(v);
  size_t i = 0, j = 0;
  uint32_t count = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] < nv[j]) {
      ++i;
    } else if (nu[i] > nv[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace esd::graph
