#ifndef ESD_GRAPH_CORE_DECOMPOSITION_H_
#define ESD_GRAPH_CORE_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace esd::graph {

/// Result of the k-core peeling decomposition.
struct CoreDecomposition {
  /// Core number per vertex.
  std::vector<uint32_t> core;
  /// Degeneracy δ = max core number (0 for edgeless graphs). The paper's
  /// Table I reports δ per dataset; arboricity satisfies α ≤ δ ≤ 2α - 1,
  /// so δ doubles as the practical stand-in for α in the complexity bounds.
  uint32_t degeneracy = 0;
  /// A degeneracy ordering: each vertex has ≤ δ neighbors later in it.
  std::vector<VertexId> order;
};

/// Linear-time bucket peeling (Matula–Beck). O(n + m).
CoreDecomposition ComputeCores(const Graph& g);

/// Lower bound on the arboricity from Nash-Williams' formula applied to the
/// whole graph: ceil(m / (n - 1)); combined with α ≤ δ this brackets α.
uint32_t ArboricityLowerBound(const Graph& g);

}  // namespace esd::graph

#endif  // ESD_GRAPH_CORE_DECOMPOSITION_H_
