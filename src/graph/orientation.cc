#include "graph/orientation.h"

#include <algorithm>
#include <numeric>

namespace esd::graph {

DegreeOrderedDag::DegreeOrderedDag(const Graph& g) {
  const VertexId n = g.NumVertices();
  // Rank by (degree, id).
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
    uint32_t da = g.Degree(a), db = g.Degree(b);
    if (da != db) return da < db;
    return a < b;
  });
  rank_.resize(n);
  for (uint32_t i = 0; i < n; ++i) rank_[order[i]] = i;

  // CSR of out-neighbors. Each undirected edge contributes one arc from the
  // lower-ranked endpoint.
  std::vector<uint32_t> outdeg(n, 0);
  for (const Edge& e : g.Edges()) {
    VertexId src = rank_[e.u] < rank_[e.v] ? e.u : e.v;
    ++outdeg[src];
  }
  offsets_.assign(n + 1, 0);
  for (VertexId u = 0; u < n; ++u) {
    offsets_[u + 1] = offsets_[u] + outdeg[u];
    max_out_degree_ = std::max(max_out_degree_, outdeg[u]);
  }
  adj_vertex_.resize(g.NumEdges());
  adj_edge_.resize(g.NumEdges());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const Edge& uv = g.EdgeAt(e);
    VertexId src = rank_[uv.u] < rank_[uv.v] ? uv.u : uv.v;
    VertexId dst = src == uv.u ? uv.v : uv.u;
    adj_vertex_[cursor[src]] = dst;
    adj_edge_[cursor[src]++] = e;
  }
  // Sort each out-list by vertex id (keeping the edge-id array parallel).
  for (VertexId u = 0; u < n; ++u) {
    uint64_t lo = offsets_[u], hi = offsets_[u + 1];
    std::vector<std::pair<VertexId, EdgeId>> tmp;
    tmp.reserve(hi - lo);
    for (uint64_t i = lo; i < hi; ++i) {
      tmp.emplace_back(adj_vertex_[i], adj_edge_[i]);
    }
    std::sort(tmp.begin(), tmp.end());
    for (uint64_t i = lo; i < hi; ++i) {
      adj_vertex_[i] = tmp[i - lo].first;
      adj_edge_[i] = tmp[i - lo].second;
    }
  }
}

}  // namespace esd::graph
