#include "graph/stats.h"

#include <algorithm>
#include <cmath>

#include "graph/connectivity.h"
#include "util/rng.h"

namespace esd::graph {

std::vector<uint64_t> DegreeHistogram(const Graph& g) {
  std::vector<uint64_t> hist(g.MaxDegree() + 1, 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) ++hist[g.Degree(v)];
  return hist;
}

double DegreeAssortativity(const Graph& g) {
  // Pearson correlation of (d(u), d(v)) over edge endpoints, symmetrized.
  if (g.NumEdges() == 0) return 0.0;
  double sum_x = 0, sum_x2 = 0, sum_xy = 0;
  for (const Edge& e : g.Edges()) {
    double du = g.Degree(e.u);
    double dv = g.Degree(e.v);
    sum_x += du + dv;
    sum_x2 += du * du + dv * dv;
    sum_xy += 2 * du * dv;
  }
  double n = 2.0 * g.NumEdges();
  double mean = sum_x / n;
  double var = sum_x2 / n - mean * mean;
  if (var <= 1e-12) return 0.0;
  double cov = sum_xy / n - mean * mean;
  return cov / var;
}

double EstimateMeanDistance(const Graph& g, uint32_t samples, uint64_t seed) {
  const VertexId n = g.NumVertices();
  if (n < 2) return 0.0;
  util::Rng rng(seed);
  uint64_t total = 0, pairs = 0;
  std::vector<int32_t> dist(n);
  std::vector<VertexId> queue;
  queue.reserve(n);
  for (uint32_t s = 0; s < samples; ++s) {
    VertexId src = static_cast<VertexId>(rng.NextBounded(n));
    std::fill(dist.begin(), dist.end(), -1);
    dist[src] = 0;
    queue.assign(1, src);
    for (size_t head = 0; head < queue.size(); ++head) {
      VertexId v = queue[head];
      for (VertexId w : g.Neighbors(v)) {
        if (dist[w] < 0) {
          dist[w] = dist[v] + 1;
          queue.push_back(w);
        }
      }
    }
    for (VertexId t = 0; t < n; ++t) {
      if (t != src && dist[t] > 0) {
        total += static_cast<uint64_t>(dist[t]);
        ++pairs;
      }
    }
  }
  return pairs == 0 ? 0.0
                    : static_cast<double>(total) / static_cast<double>(pairs);
}

double LargestComponentFraction(const Graph& g) {
  if (g.NumVertices() == 0) return 0.0;
  Components c = ConnectedComponents(g);
  uint32_t largest = *std::max_element(c.size.begin(), c.size.end());
  return static_cast<double>(largest) / g.NumVertices();
}

}  // namespace esd::graph
