#ifndef ESD_GRAPH_ORIENTATION_H_
#define ESD_GRAPH_ORIENTATION_H_

#include <span>
#include <vector>

#include "graph/graph.h"

namespace esd::graph {

/// The degree-ordered DAG of Section II: every undirected edge is oriented
/// from its lower-ranked endpoint to its higher-ranked endpoint, where
/// u ≺ v iff d(u) < d(v), ties broken by smaller vertex id.
///
/// Out-neighbor lists are sorted by vertex id so that N+(u) ∩ N+(v) can be
/// computed with a linear merge; the parallel arrays of edge ids let clique
/// enumeration report edge identities for free.
///
/// The degree ordering bounds every out-degree by O(α) on real graphs, which
/// is what gives the 4-clique index builder its O(α²m) enumeration cost
/// (Theorem 7).
class DegreeOrderedDag {
 public:
  DegreeOrderedDag() = default;

  /// Builds the DAG for `g`. The graph must outlive the DAG only for the
  /// duration of this call; the DAG stores its own adjacency.
  explicit DegreeOrderedDag(const Graph& g);

  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }

  /// Rank of vertex `u` in the total order ≺ (0 = smallest).
  uint32_t Rank(VertexId u) const { return rank_[u]; }

  /// True iff u ≺ v.
  bool Less(VertexId u, VertexId v) const { return rank_[u] < rank_[v]; }

  /// Out-degree of `u` in the DAG.
  uint32_t OutDegree(VertexId u) const {
    return static_cast<uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Largest out-degree — a practical stand-in for O(α).
  uint32_t MaxOutDegree() const { return max_out_degree_; }

  /// Out-neighbors of `u`, sorted by vertex id.
  std::span<const VertexId> OutNeighbors(VertexId u) const {
    return {adj_vertex_.data() + offsets_[u],
            adj_vertex_.data() + offsets_[u + 1]};
  }

  /// Edge ids parallel to OutNeighbors(u).
  std::span<const EdgeId> OutEdges(VertexId u) const {
    return {adj_edge_.data() + offsets_[u], adj_edge_.data() + offsets_[u + 1]};
  }

 private:
  std::vector<uint64_t> offsets_;
  std::vector<VertexId> adj_vertex_;
  std::vector<EdgeId> adj_edge_;
  std::vector<uint32_t> rank_;
  uint32_t max_out_degree_ = 0;
};

}  // namespace esd::graph

#endif  // ESD_GRAPH_ORIENTATION_H_
