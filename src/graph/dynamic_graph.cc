#include "graph/dynamic_graph.h"

#include <algorithm>

namespace esd::graph {

DynamicGraph::DynamicGraph(const Graph& g) : adj_(g.NumVertices()) {
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    adj_[u].assign(nbrs.begin(), nbrs.end());
  }
  num_edges_ = g.NumEdges();
}

bool DynamicGraph::HasEdge(VertexId u, VertexId v) const {
  if (u >= NumVertices() || v >= NumVertices() || u == v) return false;
  const std::vector<VertexId>& shorter =
      adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  VertexId target = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::binary_search(shorter.begin(), shorter.end(), target);
}

bool DynamicGraph::InsertEdge(VertexId u, VertexId v) {
  if (u == v || u >= NumVertices() || v >= NumVertices()) return false;
  auto it = std::lower_bound(adj_[u].begin(), adj_[u].end(), v);
  if (it != adj_[u].end() && *it == v) return false;
  adj_[u].insert(it, v);
  auto it2 = std::lower_bound(adj_[v].begin(), adj_[v].end(), u);
  adj_[v].insert(it2, u);
  ++num_edges_;
  return true;
}

bool DynamicGraph::EraseEdge(VertexId u, VertexId v) {
  if (u == v || u >= NumVertices() || v >= NumVertices()) return false;
  auto it = std::lower_bound(adj_[u].begin(), adj_[u].end(), v);
  if (it == adj_[u].end() || *it != v) return false;
  adj_[u].erase(it);
  auto it2 = std::lower_bound(adj_[v].begin(), adj_[v].end(), u);
  adj_[v].erase(it2);
  --num_edges_;
  return true;
}

std::vector<VertexId> DynamicGraph::CommonNeighbors(VertexId u,
                                                    VertexId v) const {
  std::vector<VertexId> out;
  const auto& nu = adj_[u];
  const auto& nv = adj_[v];
  out.reserve(std::min(nu.size(), nv.size()));
  std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                        std::back_inserter(out));
  return out;
}

Graph DynamicGraph::Snapshot() const {
  std::vector<Edge> edges;
  edges.reserve(num_edges_);
  for (VertexId u = 0; u < NumVertices(); ++u) {
    for (VertexId v : adj_[u]) {
      if (u < v) edges.push_back(Edge{u, v});
    }
  }
  return Graph::FromEdges(NumVertices(), std::move(edges));
}

}  // namespace esd::graph
