#ifndef ESD_GRAPH_IO_H_
#define ESD_GRAPH_IO_H_

#include <string>

#include "graph/graph.h"

namespace esd::graph {

/// Loads a whitespace-separated edge list (SNAP format): one "u v" pair per
/// line; lines starting with '#' or '%' are comments. Vertex ids are
/// remapped to a dense 0..n-1 range in first-appearance order.
///
/// Returns false and fills *error on failure; on success fills *out.
bool LoadEdgeList(const std::string& path, Graph* out, std::string* error);

/// Writes the graph as a SNAP-style edge list ("u v" per line, u < v),
/// with a header comment recording n and m.
bool SaveEdgeList(const Graph& g, const std::string& path, std::string* error);

/// Parses an edge list from an in-memory string (same format as
/// LoadEdgeList). Used by tests and the CLI's stdin mode.
bool ParseEdgeList(const std::string& text, Graph* out, std::string* error);

}  // namespace esd::graph

#endif  // ESD_GRAPH_IO_H_
