#include "graph/builder.h"

// GraphBuilder is header-only; this file anchors the library target.
namespace esd::graph {}
