#ifndef ESD_GRAPH_BUILDER_H_
#define ESD_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"

namespace esd::graph {

/// Incremental edge-list accumulator producing an immutable Graph.
///
/// Self-loops are dropped and duplicates collapsed at Build() time. The
/// vertex count defaults to 1 + the largest endpoint seen, but can be fixed
/// upfront to keep isolated tail vertices.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Fixes the vertex count; endpoints must stay below it.
  explicit GraphBuilder(VertexId num_vertices)
      : num_vertices_(num_vertices), fixed_n_(true) {}

  /// Queues an undirected edge {a, b}. Order of endpoints is irrelevant.
  void AddEdge(VertexId a, VertexId b) {
    edges_.push_back(MakeEdge(a, b));
    if (!fixed_n_) {
      num_vertices_ = std::max(num_vertices_, std::max(a, b) + 1);
    }
  }

  /// Number of queued (not yet deduplicated) edges.
  size_t NumQueuedEdges() const { return edges_.size(); }

  /// Current vertex count.
  VertexId NumVertices() const { return num_vertices_; }

  /// Reserves space for `m` edges.
  void Reserve(size_t m) { edges_.reserve(m); }

  /// Builds the graph, consuming the queued edges.
  Graph Build() {
    Graph g = Graph::FromEdges(num_vertices_, std::move(edges_));
    edges_.clear();
    return g;
  }

 private:
  std::vector<Edge> edges_;
  VertexId num_vertices_ = 0;
  bool fixed_n_ = false;
};

}  // namespace esd::graph

#endif  // ESD_GRAPH_BUILDER_H_
