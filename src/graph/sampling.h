#ifndef ESD_GRAPH_SAMPLING_H_
#define ESD_GRAPH_SAMPLING_H_

#include <cstdint>

#include "graph/graph.h"

namespace esd::graph {

/// Keeps each edge independently with probability `fraction` (clamped to
/// [0,1]). Vertex set is unchanged. Used by the scalability experiment
/// (Exp-5 / Fig. 9): "randomly picking 20%-80% of the edges".
Graph SampleEdges(const Graph& g, double fraction, uint64_t seed);

/// Keeps a uniform `fraction` of the vertices and returns the induced
/// subgraph, with surviving vertices re-labeled densely (Fig. 9(b)).
Graph SampleVertices(const Graph& g, double fraction, uint64_t seed);

}  // namespace esd::graph

#endif  // ESD_GRAPH_SAMPLING_H_
