#ifndef ESD_GRAPH_STATS_H_
#define ESD_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace esd::graph {

/// Degree histogram: count[d] = number of vertices with degree d.
std::vector<uint64_t> DegreeHistogram(const Graph& g);

/// Pearson degree assortativity over edges (in [-1, 1]; 0 for degree-
/// uncorrelated graphs, negative for hub-leaf graphs). Returns 0 when the
/// variance vanishes (e.g., regular graphs).
double DegreeAssortativity(const Graph& g);

/// Mean shortest-path length estimated from `samples` BFS sources
/// (unreachable pairs are skipped). Deterministic given `seed`.
double EstimateMeanDistance(const Graph& g, uint32_t samples, uint64_t seed);

/// Fraction of vertices in the largest connected component (0 for empty).
double LargestComponentFraction(const Graph& g);

}  // namespace esd::graph

#endif  // ESD_GRAPH_STATS_H_
