#ifndef ESD_ESD_VERSION_H_
#define ESD_ESD_VERSION_H_

namespace esd {

/// Library semantic version.
inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

}  // namespace esd

#endif  // ESD_ESD_VERSION_H_
