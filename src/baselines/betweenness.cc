#include "baselines/betweenness.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace esd::baselines {

using graph::EdgeId;
using graph::Graph;
using graph::VertexId;

namespace {

// One Brandes source iteration: BFS from s, then dependency accumulation in
// reverse BFS order; adds each edge's dependency to `acc`.
void AccumulateFrom(const Graph& g, VertexId s, std::vector<double>* acc,
                    std::vector<int32_t>* dist, std::vector<double>* sigma,
                    std::vector<double>* delta, std::vector<VertexId>* order) {
  const VertexId n = g.NumVertices();
  std::fill(dist->begin(), dist->end(), -1);
  std::fill(sigma->begin(), sigma->end(), 0.0);
  std::fill(delta->begin(), delta->end(), 0.0);
  order->clear();

  (*dist)[s] = 0;
  (*sigma)[s] = 1.0;
  size_t head = 0;
  order->push_back(s);
  while (head < order->size()) {
    VertexId v = (*order)[head++];
    for (VertexId w : g.Neighbors(v)) {
      if ((*dist)[w] < 0) {
        (*dist)[w] = (*dist)[v] + 1;
        order->push_back(w);
      }
      if ((*dist)[w] == (*dist)[v] + 1) {
        (*sigma)[w] += (*sigma)[v];
      }
    }
  }
  // Reverse order: accumulate dependencies onto DAG edges.
  for (size_t i = order->size(); i-- > 1;) {
    VertexId w = (*order)[i];
    auto nbrs = g.Neighbors(w);
    auto eids = g.IncidentEdges(w);
    for (size_t j = 0; j < nbrs.size(); ++j) {
      VertexId v = nbrs[j];
      if ((*dist)[v] + 1 == (*dist)[w]) {
        double c = (*sigma)[v] / (*sigma)[w] * (1.0 + (*delta)[w]);
        (*acc)[eids[j]] += c;
        (*delta)[v] += c;
      }
    }
  }
  (void)n;
}

std::vector<double> RunBrandes(const Graph& g,
                               const std::vector<VertexId>& sources,
                               double scale) {
  const VertexId n = g.NumVertices();
  std::vector<double> acc(g.NumEdges(), 0.0);
  std::vector<int32_t> dist(n);
  std::vector<double> sigma(n), delta(n);
  std::vector<VertexId> order;
  order.reserve(n);
  for (VertexId s : sources) {
    AccumulateFrom(g, s, &acc, &dist, &sigma, &delta, &order);
  }
  // Each undirected shortest path is counted from both endpoints' source
  // iterations when running over all sources; the conventional value halves
  // the sum. For sampling we scale by n / |sources| first.
  for (double& x : acc) x *= scale * 0.5;
  return acc;
}

}  // namespace

std::vector<double> EdgeBetweenness(const Graph& g) {
  std::vector<VertexId> sources(g.NumVertices());
  std::iota(sources.begin(), sources.end(), 0);
  return RunBrandes(g, sources, 1.0);
}

std::vector<double> ApproxEdgeBetweenness(const Graph& g,
                                          uint32_t num_sources,
                                          uint64_t seed) {
  const VertexId n = g.NumVertices();
  if (num_sources >= n || num_sources == 0) return EdgeBetweenness(g);
  util::Rng rng(seed);
  // Sample distinct sources by partial Fisher-Yates.
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  for (uint32_t i = 0; i < num_sources; ++i) {
    uint32_t j = i + static_cast<uint32_t>(rng.NextBounded(n - i));
    std::swap(perm[i], perm[j]);
  }
  perm.resize(num_sources);
  return RunBrandes(g, perm, static_cast<double>(n) / num_sources);
}

BetweennessTopK TopKByBetweenness(const Graph& g, uint32_t k,
                                  uint32_t num_sources, uint64_t seed) {
  std::vector<double> values =
      num_sources == 0 ? EdgeBetweenness(g)
                       : ApproxEdgeBetweenness(g, num_sources, seed);
  std::vector<EdgeId> ids(g.NumEdges());
  std::iota(ids.begin(), ids.end(), 0);
  size_t take = std::min<size_t>(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + take, ids.end(),
                    [&values](EdgeId a, EdgeId b) {
                      if (values[a] != values[b]) return values[a] > values[b];
                      return a < b;
                    });
  BetweennessTopK out;
  out.edges.reserve(take);
  out.values.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.edges.push_back(core::ScoredEdge{
        g.EdgeAt(ids[i]), static_cast<uint32_t>(values[ids[i]])});
    out.values.push_back(values[ids[i]]);
  }
  return out;
}

}  // namespace esd::baselines
