#ifndef ESD_BASELINES_VERTEX_DIVERSITY_INDEX_H_
#define ESD_BASELINES_VERTEX_DIVERSITY_INDEX_H_

#include <cstdint>
#include <map>
#include <vector>

#include "baselines/vertex_diversity.h"
#include "graph/graph.h"
#include "obs/search_stats.h"
#include "util/treap.h"

namespace esd::baselines {

/// Counters for the vertex online search — the same struct the edge
/// search reports (core::OnlineStats is this type too), so both
/// dequeue-twice searches share one set of field/metric names.
using VertexOnlineStats = obs::OnlineSearchStats;

/// Top-k *vertex* structural diversity via the dequeue-twice framework —
/// the problem of Huang et al. [2] / Chang et al. [4] that inspired the
/// paper, solved with the same machinery this library builds for edges.
/// Upper bound: ⌊d(v)/τ⌋. Returns min(k, n) vertices, descending score.
std::vector<ScoredVertex> OnlineVertexTopK(const graph::Graph& g, uint32_t k,
                                           uint32_t tau,
                                           VertexOnlineStats* stats = nullptr);

/// The vertex analogue of the ESDIndex: for every component size c
/// occurring in some vertex ego-network, a list H(c) of the vertices whose
/// neighborhood has a component of size >= c, ordered by the structural
/// diversity computed at threshold c. Queries run in O(k log n + log n);
/// the same Theorem-4 argument makes snapping tau up to the next occurring
/// size exact. (The paper leaves vertex indexing as context; we provide it
/// to show the ESDIndex design generalizes.)
class VsdIndex {
 public:
  struct Entry {
    uint32_t score = 0;
    graph::VertexId v = 0;
  };
  struct EntryLess {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.score != b.score) return a.score > b.score;
      return a.v < b.v;
    }
  };
  using List = util::Treap<Entry, EntryLess>;

  /// Builds the index by computing every vertex's neighborhood components.
  explicit VsdIndex(const graph::Graph& g);

  /// Top-k vertex structural diversity query.
  std::vector<ScoredVertex> Query(uint32_t k, uint32_t tau,
                                  bool pad_with_zero_vertices = true) const;

  /// Distinct component sizes, ascending.
  std::vector<uint32_t> DistinctSizes() const;

  /// Total entries across all lists.
  uint64_t NumEntries() const { return num_entries_; }

 private:
  std::map<uint32_t, List> lists_;
  graph::VertexId n_ = 0;
  uint64_t num_entries_ = 0;
};

}  // namespace esd::baselines

#endif  // ESD_BASELINES_VERTEX_DIVERSITY_INDEX_H_
