#include "baselines/common_neighbor.h"

#include <algorithm>
#include <numeric>

#include "cliques/triangle.h"

namespace esd::baselines {

using graph::EdgeId;
using graph::Graph;

std::vector<uint32_t> AllCommonNeighborCounts(const Graph& g) {
  // |N(uv)| equals the triangle support of the edge.
  return cliques::EdgeSupport(g);
}

core::TopKResult TopKByCommonNeighbors(const Graph& g, uint32_t k) {
  std::vector<uint32_t> counts = AllCommonNeighborCounts(g);
  std::vector<EdgeId> ids(g.NumEdges());
  std::iota(ids.begin(), ids.end(), 0);
  size_t take = std::min<size_t>(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + take, ids.end(),
                    [&counts](EdgeId a, EdgeId b) {
                      if (counts[a] != counts[b]) return counts[a] > counts[b];
                      return a < b;
                    });
  core::TopKResult out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(core::ScoredEdge{g.EdgeAt(ids[i]), counts[ids[i]]});
  }
  return out;
}

}  // namespace esd::baselines
