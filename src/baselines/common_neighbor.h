#ifndef ESD_BASELINES_COMMON_NEIGHBOR_H_
#define ESD_BASELINES_COMMON_NEIGHBOR_H_

#include <cstdint>

#include "core/topk_result.h"
#include "graph/graph.h"

namespace esd::baselines {

/// The CN baseline of the paper's case studies (Exp-7/8): rank edges by the
/// number of common neighbors |N(u) ∩ N(v)| and return the top k.
core::TopKResult TopKByCommonNeighbors(const graph::Graph& g, uint32_t k);

/// |N(u) ∩ N(v)| for every edge, indexed by EdgeId. O(αm) via the
/// degree-ordered triangle listing.
std::vector<uint32_t> AllCommonNeighborCounts(const graph::Graph& g);

}  // namespace esd::baselines

#endif  // ESD_BASELINES_COMMON_NEIGHBOR_H_
