#include "baselines/vertex_diversity.h"

#include <algorithm>
#include <numeric>

#include "graph/connectivity.h"

namespace esd::baselines {

using graph::Graph;
using graph::VertexId;

uint32_t VertexScore(const Graph& g, VertexId v, uint32_t tau) {
  auto nbrs = g.Neighbors(v);
  std::vector<VertexId> ego(nbrs.begin(), nbrs.end());
  std::vector<uint32_t> sizes = graph::InducedComponentSizes(g, ego);
  uint32_t score = 0;
  for (uint32_t s : sizes) {
    if (s >= tau) ++score;
  }
  return score;
}

std::vector<uint32_t> AllVertexScores(const Graph& g, uint32_t tau) {
  std::vector<uint32_t> scores(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    scores[v] = VertexScore(g, v, tau);
  }
  return scores;
}

std::vector<ScoredVertex> TopKVertexDiversity(const Graph& g, uint32_t k,
                                              uint32_t tau) {
  std::vector<uint32_t> scores = AllVertexScores(g, tau);
  std::vector<VertexId> ids(g.NumVertices());
  std::iota(ids.begin(), ids.end(), 0);
  size_t take = std::min<size_t>(k, ids.size());
  std::partial_sort(ids.begin(), ids.begin() + take, ids.end(),
                    [&scores](VertexId a, VertexId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  std::vector<ScoredVertex> out;
  out.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    out.push_back(ScoredVertex{ids[i], scores[ids[i]]});
  }
  return out;
}

}  // namespace esd::baselines
