#ifndef ESD_BASELINES_VERTEX_DIVERSITY_H_
#define ESD_BASELINES_VERTEX_DIVERSITY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace esd::baselines {

/// A vertex with its structural diversity score.
struct ScoredVertex {
  graph::VertexId v = 0;
  uint32_t score = 0;

  friend bool operator==(const ScoredVertex&, const ScoredVertex&) = default;
};

/// Structural diversity of a vertex (Ugander et al. / Huang et al. [2]):
/// number of connected components of the subgraph induced by N(v) with size
/// >= tau. The vertex analogue of the paper's edge metric, implemented for
/// completeness and for contrasting the two notions in the examples.
uint32_t VertexScore(const graph::Graph& g, graph::VertexId v, uint32_t tau);

/// Structural diversity of every vertex at threshold tau.
std::vector<uint32_t> AllVertexScores(const graph::Graph& g, uint32_t tau);

/// Top-k vertices by structural diversity, descending score, ties by id.
std::vector<ScoredVertex> TopKVertexDiversity(const graph::Graph& g,
                                              uint32_t k, uint32_t tau);

}  // namespace esd::baselines

#endif  // ESD_BASELINES_VERTEX_DIVERSITY_H_
