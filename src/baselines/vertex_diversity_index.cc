#include "baselines/vertex_diversity_index.h"

#include <algorithm>

#include "graph/connectivity.h"
#include "util/binary_heap.h"
#include "util/flat_map.h"
#include "util/timer.h"

namespace esd::baselines {

using graph::Graph;
using graph::VertexId;

namespace {

// Sorted (ascending) component sizes of the subgraph induced by N(v).
std::vector<uint32_t> NeighborhoodComponentSizes(const Graph& g, VertexId v) {
  auto nbrs = g.Neighbors(v);
  std::vector<VertexId> ego(nbrs.begin(), nbrs.end());
  std::vector<uint32_t> sizes = graph::InducedComponentSizes(g, ego);
  std::sort(sizes.begin(), sizes.end());
  return sizes;
}

}  // namespace

std::vector<ScoredVertex> OnlineVertexTopK(const Graph& g, uint32_t k,
                                           uint32_t tau,
                                           VertexOnlineStats* stats) {
  std::vector<ScoredVertex> result;
  if (k == 0 || g.NumVertices() == 0 || tau == 0) return result;

  auto priority = [](uint32_t value, uint32_t phase) {
    return (static_cast<int64_t>(value) << 1) | phase;
  };
  util::BinaryHeap<VertexId, int64_t> queue;
  queue.Reserve(g.NumVertices());
  util::Timer bound_timer;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    const uint32_t bound = g.Degree(v) / tau;
    if (bound == 0) {
      // A neighborhood component has at most d(v) < tau vertices, so the
      // score is provably 0: certify without an induced-subgraph BFS (the
      // same zero-bound rule as the edge search).
      queue.Push(v, priority(0, 1));
      if (stats != nullptr) ++stats->zero_bound_skips;
    } else {
      queue.Push(v, priority(bound, 0));
    }
  }
  if (stats != nullptr) stats->bound_seconds = bound_timer.ElapsedSeconds();
  std::vector<uint32_t> exact(g.NumVertices(), 0);
  while (result.size() < k && !queue.empty()) {
    auto [v, prio] = queue.Pop();
    if (stats != nullptr) ++stats->heap_pops;
    if ((prio & 1) != 0) {
      result.push_back(ScoredVertex{v, exact[v]});
      continue;
    }
    exact[v] = VertexScore(g, v, tau);
    if (stats != nullptr) ++stats->exact_computations;
    queue.Push(v, priority(exact[v], 1));
  }
  return result;
}

VsdIndex::VsdIndex(const Graph& g) : n_(g.NumVertices()) {
  // Group vertices by max component size, sweep sizes descending, build
  // each list from one sorted run (mirrors EsdIndex::BulkLoad).
  std::vector<std::vector<uint32_t>> sizes(n_);
  std::map<uint32_t, uint32_t> owner_count;
  for (VertexId v = 0; v < n_; ++v) {
    sizes[v] = NeighborhoodComponentSizes(g, v);
    for (size_t i = 0; i < sizes[v].size(); ++i) {
      if (i > 0 && sizes[v][i] == sizes[v][i - 1]) continue;
      ++owner_count[sizes[v][i]];
    }
  }
  std::map<uint32_t, std::vector<VertexId>, std::greater<>> by_max;
  for (VertexId v = 0; v < n_; ++v) {
    if (!sizes[v].empty()) by_max[sizes[v].back()].push_back(v);
  }
  std::vector<uint32_t> all_c;
  for (const auto& [c, cnt] : owner_count) all_c.push_back(c);

  std::vector<VertexId> active;
  auto max_it = by_max.begin();
  std::vector<Entry> run;
  for (auto it = all_c.rbegin(); it != all_c.rend(); ++it) {
    uint32_t c = *it;
    while (max_it != by_max.end() && max_it->first >= c) {
      active.insert(active.end(), max_it->second.begin(),
                    max_it->second.end());
      ++max_it;
    }
    run.clear();
    for (VertexId v : active) {
      const auto& s = sizes[v];
      uint32_t score = static_cast<uint32_t>(
          s.end() - std::lower_bound(s.begin(), s.end(), c));
      run.push_back(Entry{score, v});
    }
    std::sort(run.begin(), run.end(),
              [](const Entry& a, const Entry& b) { return EntryLess()(a, b); });
    List list;
    list.BuildFromSorted(run);
    num_entries_ += list.size();
    lists_.emplace(c, std::move(list));
  }
}

std::vector<ScoredVertex> VsdIndex::Query(uint32_t k, uint32_t tau,
                                          bool pad_with_zero_vertices) const {
  std::vector<ScoredVertex> out;
  if (k == 0 || tau == 0) return out;
  auto it = lists_.lower_bound(tau);
  std::vector<VertexId> taken;
  if (it != lists_.end()) {
    it->second.ForEachInOrder([&](const Entry& entry) {
      if (out.size() >= k) return false;
      out.push_back(ScoredVertex{entry.v, entry.score});
      taken.push_back(entry.v);
      return true;
    });
  }
  if (pad_with_zero_vertices && out.size() < k) {
    util::FlatSet<VertexId> included(taken.size());
    for (VertexId v : taken) included.Insert(v);
    for (VertexId v = 0; v < n_ && out.size() < k; ++v) {
      if (!included.Contains(v)) out.push_back(ScoredVertex{v, 0});
    }
  }
  return out;
}

std::vector<uint32_t> VsdIndex::DistinctSizes() const {
  std::vector<uint32_t> out;
  for (const auto& [c, list] : lists_) out.push_back(c);
  return out;
}

}  // namespace esd::baselines
