#ifndef ESD_BASELINES_BETWEENNESS_H_
#define ESD_BASELINES_BETWEENNESS_H_

#include <cstdint>
#include <vector>

#include "core/topk_result.h"
#include "graph/graph.h"

namespace esd::baselines {

/// Exact edge betweenness centrality (Brandes' accumulation on unweighted
/// shortest-path DAGs), indexed by EdgeId. O(nm) — the BT baseline of the
/// paper's case studies.
std::vector<double> EdgeBetweenness(const graph::Graph& g);

/// Pivot-sampled approximation: accumulates dependencies from `num_sources`
/// uniformly sampled sources and rescales by n / num_sources. Exact when
/// num_sources >= n.
std::vector<double> ApproxEdgeBetweenness(const graph::Graph& g,
                                          uint32_t num_sources, uint64_t seed);

/// Top-k edges by (exact or sampled) betweenness; the ScoredEdge::score
/// field carries the rank-truncated integer part of the centrality value,
/// use the returned `values` for exact numbers.
struct BetweennessTopK {
  core::TopKResult edges;
  std::vector<double> values;  // parallel to edges
};
BetweennessTopK TopKByBetweenness(const graph::Graph& g, uint32_t k,
                                  uint32_t num_sources = 0, uint64_t seed = 1);

}  // namespace esd::baselines

#endif  // ESD_BASELINES_BETWEENNESS_H_
