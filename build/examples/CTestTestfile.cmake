# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_social_contagion "/root/repo/build/examples/social_contagion")
set_tests_properties(example_social_contagion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_word_senses "/root/repo/build/examples/word_senses")
set_tests_properties(example_word_senses PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dblp_bridges "/root/repo/build/examples/dblp_bridges")
set_tests_properties(example_dblp_bridges PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dynamic_stream "/root/repo/build/examples/dynamic_stream")
set_tests_properties(example_dynamic_stream PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_friend_suggestion "/root/repo/build/examples/friend_suggestion")
set_tests_properties(example_friend_suggestion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_esd_cli "/root/repo/build/examples/esd_cli" "--dataset" "youtube-s" "--scale" "0.1" "--k" "3" "--tau" "2")
set_tests_properties(example_esd_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_esd_cli_online "/root/repo/build/examples/esd_cli" "--dataset" "youtube-s" "--scale" "0.1" "--k" "3" "--online")
set_tests_properties(example_esd_cli_online PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_esd_cli_stats "/root/repo/build/examples/esd_cli" "--dataset" "dblp-s" "--scale" "0.05" "--stats")
set_tests_properties(example_esd_cli_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_graph_gen "/root/repo/build/examples/graph_gen" "--model" "hk" "--n" "500" "--attach" "4" "--p" "0.4" "--out" "/root/repo/build/graph_gen_smoke.txt")
set_tests_properties(example_graph_gen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
