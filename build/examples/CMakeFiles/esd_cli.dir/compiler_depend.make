# Empty compiler generated dependencies file for esd_cli.
# This may be replaced when dependencies are built.
