file(REMOVE_RECURSE
  "CMakeFiles/esd_cli.dir/esd_cli.cpp.o"
  "CMakeFiles/esd_cli.dir/esd_cli.cpp.o.d"
  "esd_cli"
  "esd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
