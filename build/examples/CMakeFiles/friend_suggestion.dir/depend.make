# Empty dependencies file for friend_suggestion.
# This may be replaced when dependencies are built.
