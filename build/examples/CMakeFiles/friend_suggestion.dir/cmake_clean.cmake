file(REMOVE_RECURSE
  "CMakeFiles/friend_suggestion.dir/friend_suggestion.cpp.o"
  "CMakeFiles/friend_suggestion.dir/friend_suggestion.cpp.o.d"
  "friend_suggestion"
  "friend_suggestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/friend_suggestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
