file(REMOVE_RECURSE
  "CMakeFiles/word_senses.dir/word_senses.cpp.o"
  "CMakeFiles/word_senses.dir/word_senses.cpp.o.d"
  "word_senses"
  "word_senses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/word_senses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
