# Empty dependencies file for word_senses.
# This may be replaced when dependencies are built.
