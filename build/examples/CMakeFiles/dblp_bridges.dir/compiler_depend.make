# Empty compiler generated dependencies file for dblp_bridges.
# This may be replaced when dependencies are built.
