file(REMOVE_RECURSE
  "CMakeFiles/dblp_bridges.dir/dblp_bridges.cpp.o"
  "CMakeFiles/dblp_bridges.dir/dblp_bridges.cpp.o.d"
  "dblp_bridges"
  "dblp_bridges.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dblp_bridges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
