file(REMOVE_RECURSE
  "CMakeFiles/social_contagion.dir/social_contagion.cpp.o"
  "CMakeFiles/social_contagion.dir/social_contagion.cpp.o.d"
  "social_contagion"
  "social_contagion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/social_contagion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
