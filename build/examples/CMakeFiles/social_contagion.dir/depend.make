# Empty dependencies file for social_contagion.
# This may be replaced when dependencies are built.
