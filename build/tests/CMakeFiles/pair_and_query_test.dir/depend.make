# Empty dependencies file for pair_and_query_test.
# This may be replaced when dependencies are built.
