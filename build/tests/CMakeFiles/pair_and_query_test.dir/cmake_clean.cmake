file(REMOVE_RECURSE
  "CMakeFiles/pair_and_query_test.dir/pair_and_query_test.cc.o"
  "CMakeFiles/pair_and_query_test.dir/pair_and_query_test.cc.o.d"
  "pair_and_query_test"
  "pair_and_query_test.pdb"
  "pair_and_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_and_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
