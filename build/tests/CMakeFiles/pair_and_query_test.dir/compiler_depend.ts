# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for pair_and_query_test.
