file(REMOVE_RECURSE
  "CMakeFiles/fuzz_dynamic_test.dir/fuzz_dynamic_test.cc.o"
  "CMakeFiles/fuzz_dynamic_test.dir/fuzz_dynamic_test.cc.o.d"
  "fuzz_dynamic_test"
  "fuzz_dynamic_test.pdb"
  "fuzz_dynamic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_dynamic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
