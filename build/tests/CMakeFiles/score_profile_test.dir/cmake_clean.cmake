file(REMOVE_RECURSE
  "CMakeFiles/score_profile_test.dir/score_profile_test.cc.o"
  "CMakeFiles/score_profile_test.dir/score_profile_test.cc.o.d"
  "score_profile_test"
  "score_profile_test.pdb"
  "score_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/score_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
