# Empty compiler generated dependencies file for score_profile_test.
# This may be replaced when dependencies are built.
