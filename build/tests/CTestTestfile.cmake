# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/cliques_test[1]_include.cmake")
include("/root/repo/build/tests/gen_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/truss_test[1]_include.cmake")
include("/root/repo/build/tests/pair_and_query_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/paper_example_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_dynamic_test[1]_include.cmake")
include("/root/repo/build/tests/score_profile_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/edge_cases_test[1]_include.cmake")
include("/root/repo/build/tests/metamorphic_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
