# Empty dependencies file for case_dblp.
# This may be replaced when dependencies are built.
