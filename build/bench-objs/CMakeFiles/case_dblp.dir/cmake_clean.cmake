file(REMOVE_RECURSE
  "../bench/case_dblp"
  "../bench/case_dblp.pdb"
  "CMakeFiles/case_dblp.dir/case_dblp.cpp.o"
  "CMakeFiles/case_dblp.dir/case_dblp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_dblp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
