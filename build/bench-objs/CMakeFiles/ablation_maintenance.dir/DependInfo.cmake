
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_maintenance.cpp" "bench-objs/CMakeFiles/ablation_maintenance.dir/ablation_maintenance.cpp.o" "gcc" "bench-objs/CMakeFiles/ablation_maintenance.dir/ablation_maintenance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/esd_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/esd_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/esd_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/esd_cliques.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/esd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/esd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
