file(REMOVE_RECURSE
  "../bench/ablation_maintenance"
  "../bench/ablation_maintenance.pdb"
  "CMakeFiles/ablation_maintenance.dir/ablation_maintenance.cpp.o"
  "CMakeFiles/ablation_maintenance.dir/ablation_maintenance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
