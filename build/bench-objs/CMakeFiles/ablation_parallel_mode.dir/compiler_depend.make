# Empty compiler generated dependencies file for ablation_parallel_mode.
# This may be replaced when dependencies are built.
