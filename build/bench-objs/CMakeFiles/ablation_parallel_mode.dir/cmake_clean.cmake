file(REMOVE_RECURSE
  "../bench/ablation_parallel_mode"
  "../bench/ablation_parallel_mode.pdb"
  "CMakeFiles/ablation_parallel_mode.dir/ablation_parallel_mode.cpp.o"
  "CMakeFiles/ablation_parallel_mode.dir/ablation_parallel_mode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parallel_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
