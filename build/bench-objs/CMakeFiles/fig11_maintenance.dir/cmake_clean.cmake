file(REMOVE_RECURSE
  "../bench/fig11_maintenance"
  "../bench/fig11_maintenance.pdb"
  "CMakeFiles/fig11_maintenance.dir/fig11_maintenance.cpp.o"
  "CMakeFiles/fig11_maintenance.dir/fig11_maintenance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
