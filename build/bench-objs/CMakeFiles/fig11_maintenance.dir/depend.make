# Empty dependencies file for fig11_maintenance.
# This may be replaced when dependencies are built.
