file(REMOVE_RECURSE
  "../bench/ablation_builders"
  "../bench/ablation_builders.pdb"
  "CMakeFiles/ablation_builders.dir/ablation_builders.cpp.o"
  "CMakeFiles/ablation_builders.dir/ablation_builders.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_builders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
