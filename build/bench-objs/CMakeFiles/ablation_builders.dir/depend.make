# Empty dependencies file for ablation_builders.
# This may be replaced when dependencies are built.
