# Empty compiler generated dependencies file for case_words.
# This may be replaced when dependencies are built.
