file(REMOVE_RECURSE
  "../bench/case_words"
  "../bench/case_words.pdb"
  "CMakeFiles/case_words.dir/case_words.cpp.o"
  "CMakeFiles/case_words.dir/case_words.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_words.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
