file(REMOVE_RECURSE
  "../bench/ext_vertex_diversity"
  "../bench/ext_vertex_diversity.pdb"
  "CMakeFiles/ext_vertex_diversity.dir/ext_vertex_diversity.cpp.o"
  "CMakeFiles/ext_vertex_diversity.dir/ext_vertex_diversity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_vertex_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
