# Empty dependencies file for ext_vertex_diversity.
# This may be replaced when dependencies are built.
