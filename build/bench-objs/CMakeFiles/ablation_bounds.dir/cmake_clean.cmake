file(REMOVE_RECURSE
  "../bench/ablation_bounds"
  "../bench/ablation_bounds.pdb"
  "CMakeFiles/ablation_bounds.dir/ablation_bounds.cpp.o"
  "CMakeFiles/ablation_bounds.dir/ablation_bounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
