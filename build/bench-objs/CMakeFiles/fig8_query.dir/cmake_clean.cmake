file(REMOVE_RECURSE
  "../bench/fig8_query"
  "../bench/fig8_query.pdb"
  "CMakeFiles/fig8_query.dir/fig8_query.cpp.o"
  "CMakeFiles/fig8_query.dir/fig8_query.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
