file(REMOVE_RECURSE
  "../bench/fig6_index_construction"
  "../bench/fig6_index_construction.pdb"
  "CMakeFiles/fig6_index_construction.dir/fig6_index_construction.cpp.o"
  "CMakeFiles/fig6_index_construction.dir/fig6_index_construction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_index_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
