# Empty dependencies file for fig6_index_construction.
# This may be replaced when dependencies are built.
