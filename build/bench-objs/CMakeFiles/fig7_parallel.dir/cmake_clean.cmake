file(REMOVE_RECURSE
  "../bench/fig7_parallel"
  "../bench/fig7_parallel.pdb"
  "CMakeFiles/fig7_parallel.dir/fig7_parallel.cpp.o"
  "CMakeFiles/fig7_parallel.dir/fig7_parallel.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
