# Empty dependencies file for fig7_parallel.
# This may be replaced when dependencies are built.
