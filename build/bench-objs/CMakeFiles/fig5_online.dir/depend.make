# Empty dependencies file for fig5_online.
# This may be replaced when dependencies are built.
