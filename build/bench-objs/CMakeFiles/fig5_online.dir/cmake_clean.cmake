file(REMOVE_RECURSE
  "../bench/fig5_online"
  "../bench/fig5_online.pdb"
  "CMakeFiles/fig5_online.dir/fig5_online.cpp.o"
  "CMakeFiles/fig5_online.dir/fig5_online.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
