file(REMOVE_RECURSE
  "../bench/ablation_index_container"
  "../bench/ablation_index_container.pdb"
  "CMakeFiles/ablation_index_container.dir/ablation_index_container.cpp.o"
  "CMakeFiles/ablation_index_container.dir/ablation_index_container.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_index_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
