# Empty compiler generated dependencies file for ablation_index_container.
# This may be replaced when dependencies are built.
