file(REMOVE_RECURSE
  "../bench/ext_pair_diversity"
  "../bench/ext_pair_diversity.pdb"
  "CMakeFiles/ext_pair_diversity.dir/ext_pair_diversity.cpp.o"
  "CMakeFiles/ext_pair_diversity.dir/ext_pair_diversity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_pair_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
