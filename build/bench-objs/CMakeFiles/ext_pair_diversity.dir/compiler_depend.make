# Empty compiler generated dependencies file for ext_pair_diversity.
# This may be replaced when dependencies are built.
