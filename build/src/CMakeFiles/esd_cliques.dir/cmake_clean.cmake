file(REMOVE_RECURSE
  "CMakeFiles/esd_cliques.dir/cliques/four_clique.cc.o"
  "CMakeFiles/esd_cliques.dir/cliques/four_clique.cc.o.d"
  "CMakeFiles/esd_cliques.dir/cliques/kclique.cc.o"
  "CMakeFiles/esd_cliques.dir/cliques/kclique.cc.o.d"
  "CMakeFiles/esd_cliques.dir/cliques/triangle.cc.o"
  "CMakeFiles/esd_cliques.dir/cliques/triangle.cc.o.d"
  "CMakeFiles/esd_cliques.dir/cliques/truss.cc.o"
  "CMakeFiles/esd_cliques.dir/cliques/truss.cc.o.d"
  "libesd_cliques.a"
  "libesd_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esd_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
