file(REMOVE_RECURSE
  "libesd_cliques.a"
)
