
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cliques/four_clique.cc" "src/CMakeFiles/esd_cliques.dir/cliques/four_clique.cc.o" "gcc" "src/CMakeFiles/esd_cliques.dir/cliques/four_clique.cc.o.d"
  "/root/repo/src/cliques/kclique.cc" "src/CMakeFiles/esd_cliques.dir/cliques/kclique.cc.o" "gcc" "src/CMakeFiles/esd_cliques.dir/cliques/kclique.cc.o.d"
  "/root/repo/src/cliques/triangle.cc" "src/CMakeFiles/esd_cliques.dir/cliques/triangle.cc.o" "gcc" "src/CMakeFiles/esd_cliques.dir/cliques/triangle.cc.o.d"
  "/root/repo/src/cliques/truss.cc" "src/CMakeFiles/esd_cliques.dir/cliques/truss.cc.o" "gcc" "src/CMakeFiles/esd_cliques.dir/cliques/truss.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/esd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/esd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
