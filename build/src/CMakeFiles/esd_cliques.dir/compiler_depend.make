# Empty compiler generated dependencies file for esd_cliques.
# This may be replaced when dependencies are built.
