# Empty dependencies file for esd_graph.
# This may be replaced when dependencies are built.
