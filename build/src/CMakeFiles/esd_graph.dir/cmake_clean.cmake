file(REMOVE_RECURSE
  "CMakeFiles/esd_graph.dir/graph/builder.cc.o"
  "CMakeFiles/esd_graph.dir/graph/builder.cc.o.d"
  "CMakeFiles/esd_graph.dir/graph/connectivity.cc.o"
  "CMakeFiles/esd_graph.dir/graph/connectivity.cc.o.d"
  "CMakeFiles/esd_graph.dir/graph/core_decomposition.cc.o"
  "CMakeFiles/esd_graph.dir/graph/core_decomposition.cc.o.d"
  "CMakeFiles/esd_graph.dir/graph/dynamic_graph.cc.o"
  "CMakeFiles/esd_graph.dir/graph/dynamic_graph.cc.o.d"
  "CMakeFiles/esd_graph.dir/graph/graph.cc.o"
  "CMakeFiles/esd_graph.dir/graph/graph.cc.o.d"
  "CMakeFiles/esd_graph.dir/graph/io.cc.o"
  "CMakeFiles/esd_graph.dir/graph/io.cc.o.d"
  "CMakeFiles/esd_graph.dir/graph/orientation.cc.o"
  "CMakeFiles/esd_graph.dir/graph/orientation.cc.o.d"
  "CMakeFiles/esd_graph.dir/graph/sampling.cc.o"
  "CMakeFiles/esd_graph.dir/graph/sampling.cc.o.d"
  "CMakeFiles/esd_graph.dir/graph/stats.cc.o"
  "CMakeFiles/esd_graph.dir/graph/stats.cc.o.d"
  "libesd_graph.a"
  "libesd_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esd_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
