file(REMOVE_RECURSE
  "libesd_graph.a"
)
