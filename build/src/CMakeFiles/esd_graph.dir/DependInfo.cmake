
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/builder.cc" "src/CMakeFiles/esd_graph.dir/graph/builder.cc.o" "gcc" "src/CMakeFiles/esd_graph.dir/graph/builder.cc.o.d"
  "/root/repo/src/graph/connectivity.cc" "src/CMakeFiles/esd_graph.dir/graph/connectivity.cc.o" "gcc" "src/CMakeFiles/esd_graph.dir/graph/connectivity.cc.o.d"
  "/root/repo/src/graph/core_decomposition.cc" "src/CMakeFiles/esd_graph.dir/graph/core_decomposition.cc.o" "gcc" "src/CMakeFiles/esd_graph.dir/graph/core_decomposition.cc.o.d"
  "/root/repo/src/graph/dynamic_graph.cc" "src/CMakeFiles/esd_graph.dir/graph/dynamic_graph.cc.o" "gcc" "src/CMakeFiles/esd_graph.dir/graph/dynamic_graph.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/esd_graph.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/esd_graph.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/io.cc" "src/CMakeFiles/esd_graph.dir/graph/io.cc.o" "gcc" "src/CMakeFiles/esd_graph.dir/graph/io.cc.o.d"
  "/root/repo/src/graph/orientation.cc" "src/CMakeFiles/esd_graph.dir/graph/orientation.cc.o" "gcc" "src/CMakeFiles/esd_graph.dir/graph/orientation.cc.o.d"
  "/root/repo/src/graph/sampling.cc" "src/CMakeFiles/esd_graph.dir/graph/sampling.cc.o" "gcc" "src/CMakeFiles/esd_graph.dir/graph/sampling.cc.o.d"
  "/root/repo/src/graph/stats.cc" "src/CMakeFiles/esd_graph.dir/graph/stats.cc.o" "gcc" "src/CMakeFiles/esd_graph.dir/graph/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/esd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
