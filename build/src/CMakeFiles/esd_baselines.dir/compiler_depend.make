# Empty compiler generated dependencies file for esd_baselines.
# This may be replaced when dependencies are built.
