file(REMOVE_RECURSE
  "CMakeFiles/esd_baselines.dir/baselines/betweenness.cc.o"
  "CMakeFiles/esd_baselines.dir/baselines/betweenness.cc.o.d"
  "CMakeFiles/esd_baselines.dir/baselines/common_neighbor.cc.o"
  "CMakeFiles/esd_baselines.dir/baselines/common_neighbor.cc.o.d"
  "CMakeFiles/esd_baselines.dir/baselines/vertex_diversity.cc.o"
  "CMakeFiles/esd_baselines.dir/baselines/vertex_diversity.cc.o.d"
  "CMakeFiles/esd_baselines.dir/baselines/vertex_diversity_index.cc.o"
  "CMakeFiles/esd_baselines.dir/baselines/vertex_diversity_index.cc.o.d"
  "libesd_baselines.a"
  "libesd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
