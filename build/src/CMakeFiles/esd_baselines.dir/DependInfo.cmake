
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/betweenness.cc" "src/CMakeFiles/esd_baselines.dir/baselines/betweenness.cc.o" "gcc" "src/CMakeFiles/esd_baselines.dir/baselines/betweenness.cc.o.d"
  "/root/repo/src/baselines/common_neighbor.cc" "src/CMakeFiles/esd_baselines.dir/baselines/common_neighbor.cc.o" "gcc" "src/CMakeFiles/esd_baselines.dir/baselines/common_neighbor.cc.o.d"
  "/root/repo/src/baselines/vertex_diversity.cc" "src/CMakeFiles/esd_baselines.dir/baselines/vertex_diversity.cc.o" "gcc" "src/CMakeFiles/esd_baselines.dir/baselines/vertex_diversity.cc.o.d"
  "/root/repo/src/baselines/vertex_diversity_index.cc" "src/CMakeFiles/esd_baselines.dir/baselines/vertex_diversity_index.cc.o" "gcc" "src/CMakeFiles/esd_baselines.dir/baselines/vertex_diversity_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/esd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/esd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
