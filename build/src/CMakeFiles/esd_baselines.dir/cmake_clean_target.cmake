file(REMOVE_RECURSE
  "libesd_baselines.a"
)
