file(REMOVE_RECURSE
  "libesd_core.a"
)
