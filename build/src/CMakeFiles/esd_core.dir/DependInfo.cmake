
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dynamic_index.cc" "src/CMakeFiles/esd_core.dir/core/dynamic_index.cc.o" "gcc" "src/CMakeFiles/esd_core.dir/core/dynamic_index.cc.o.d"
  "/root/repo/src/core/edge_dsu_arena.cc" "src/CMakeFiles/esd_core.dir/core/edge_dsu_arena.cc.o" "gcc" "src/CMakeFiles/esd_core.dir/core/edge_dsu_arena.cc.o.d"
  "/root/repo/src/core/ego_network.cc" "src/CMakeFiles/esd_core.dir/core/ego_network.cc.o" "gcc" "src/CMakeFiles/esd_core.dir/core/ego_network.cc.o.d"
  "/root/repo/src/core/esd_index.cc" "src/CMakeFiles/esd_core.dir/core/esd_index.cc.o" "gcc" "src/CMakeFiles/esd_core.dir/core/esd_index.cc.o.d"
  "/root/repo/src/core/index_builder.cc" "src/CMakeFiles/esd_core.dir/core/index_builder.cc.o" "gcc" "src/CMakeFiles/esd_core.dir/core/index_builder.cc.o.d"
  "/root/repo/src/core/index_io.cc" "src/CMakeFiles/esd_core.dir/core/index_io.cc.o" "gcc" "src/CMakeFiles/esd_core.dir/core/index_io.cc.o.d"
  "/root/repo/src/core/naive_topk.cc" "src/CMakeFiles/esd_core.dir/core/naive_topk.cc.o" "gcc" "src/CMakeFiles/esd_core.dir/core/naive_topk.cc.o.d"
  "/root/repo/src/core/online_topk.cc" "src/CMakeFiles/esd_core.dir/core/online_topk.cc.o" "gcc" "src/CMakeFiles/esd_core.dir/core/online_topk.cc.o.d"
  "/root/repo/src/core/pair_diversity.cc" "src/CMakeFiles/esd_core.dir/core/pair_diversity.cc.o" "gcc" "src/CMakeFiles/esd_core.dir/core/pair_diversity.cc.o.d"
  "/root/repo/src/core/parallel_builder.cc" "src/CMakeFiles/esd_core.dir/core/parallel_builder.cc.o" "gcc" "src/CMakeFiles/esd_core.dir/core/parallel_builder.cc.o.d"
  "/root/repo/src/core/score_profile.cc" "src/CMakeFiles/esd_core.dir/core/score_profile.cc.o" "gcc" "src/CMakeFiles/esd_core.dir/core/score_profile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/esd_cliques.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/esd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/esd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
