file(REMOVE_RECURSE
  "CMakeFiles/esd_core.dir/core/dynamic_index.cc.o"
  "CMakeFiles/esd_core.dir/core/dynamic_index.cc.o.d"
  "CMakeFiles/esd_core.dir/core/edge_dsu_arena.cc.o"
  "CMakeFiles/esd_core.dir/core/edge_dsu_arena.cc.o.d"
  "CMakeFiles/esd_core.dir/core/ego_network.cc.o"
  "CMakeFiles/esd_core.dir/core/ego_network.cc.o.d"
  "CMakeFiles/esd_core.dir/core/esd_index.cc.o"
  "CMakeFiles/esd_core.dir/core/esd_index.cc.o.d"
  "CMakeFiles/esd_core.dir/core/index_builder.cc.o"
  "CMakeFiles/esd_core.dir/core/index_builder.cc.o.d"
  "CMakeFiles/esd_core.dir/core/index_io.cc.o"
  "CMakeFiles/esd_core.dir/core/index_io.cc.o.d"
  "CMakeFiles/esd_core.dir/core/naive_topk.cc.o"
  "CMakeFiles/esd_core.dir/core/naive_topk.cc.o.d"
  "CMakeFiles/esd_core.dir/core/online_topk.cc.o"
  "CMakeFiles/esd_core.dir/core/online_topk.cc.o.d"
  "CMakeFiles/esd_core.dir/core/pair_diversity.cc.o"
  "CMakeFiles/esd_core.dir/core/pair_diversity.cc.o.d"
  "CMakeFiles/esd_core.dir/core/parallel_builder.cc.o"
  "CMakeFiles/esd_core.dir/core/parallel_builder.cc.o.d"
  "CMakeFiles/esd_core.dir/core/score_profile.cc.o"
  "CMakeFiles/esd_core.dir/core/score_profile.cc.o.d"
  "libesd_core.a"
  "libesd_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esd_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
