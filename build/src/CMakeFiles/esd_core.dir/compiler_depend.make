# Empty compiler generated dependencies file for esd_core.
# This may be replaced when dependencies are built.
