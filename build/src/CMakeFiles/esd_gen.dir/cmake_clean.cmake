file(REMOVE_RECURSE
  "CMakeFiles/esd_gen.dir/gen/barabasi_albert.cc.o"
  "CMakeFiles/esd_gen.dir/gen/barabasi_albert.cc.o.d"
  "CMakeFiles/esd_gen.dir/gen/chung_lu.cc.o"
  "CMakeFiles/esd_gen.dir/gen/chung_lu.cc.o.d"
  "CMakeFiles/esd_gen.dir/gen/collaboration.cc.o"
  "CMakeFiles/esd_gen.dir/gen/collaboration.cc.o.d"
  "CMakeFiles/esd_gen.dir/gen/datasets.cc.o"
  "CMakeFiles/esd_gen.dir/gen/datasets.cc.o.d"
  "CMakeFiles/esd_gen.dir/gen/erdos_renyi.cc.o"
  "CMakeFiles/esd_gen.dir/gen/erdos_renyi.cc.o.d"
  "CMakeFiles/esd_gen.dir/gen/holme_kim.cc.o"
  "CMakeFiles/esd_gen.dir/gen/holme_kim.cc.o.d"
  "CMakeFiles/esd_gen.dir/gen/planted_partition.cc.o"
  "CMakeFiles/esd_gen.dir/gen/planted_partition.cc.o.d"
  "CMakeFiles/esd_gen.dir/gen/rmat.cc.o"
  "CMakeFiles/esd_gen.dir/gen/rmat.cc.o.d"
  "CMakeFiles/esd_gen.dir/gen/watts_strogatz.cc.o"
  "CMakeFiles/esd_gen.dir/gen/watts_strogatz.cc.o.d"
  "CMakeFiles/esd_gen.dir/gen/word_association.cc.o"
  "CMakeFiles/esd_gen.dir/gen/word_association.cc.o.d"
  "libesd_gen.a"
  "libesd_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esd_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
