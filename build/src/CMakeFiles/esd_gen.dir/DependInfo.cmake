
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gen/barabasi_albert.cc" "src/CMakeFiles/esd_gen.dir/gen/barabasi_albert.cc.o" "gcc" "src/CMakeFiles/esd_gen.dir/gen/barabasi_albert.cc.o.d"
  "/root/repo/src/gen/chung_lu.cc" "src/CMakeFiles/esd_gen.dir/gen/chung_lu.cc.o" "gcc" "src/CMakeFiles/esd_gen.dir/gen/chung_lu.cc.o.d"
  "/root/repo/src/gen/collaboration.cc" "src/CMakeFiles/esd_gen.dir/gen/collaboration.cc.o" "gcc" "src/CMakeFiles/esd_gen.dir/gen/collaboration.cc.o.d"
  "/root/repo/src/gen/datasets.cc" "src/CMakeFiles/esd_gen.dir/gen/datasets.cc.o" "gcc" "src/CMakeFiles/esd_gen.dir/gen/datasets.cc.o.d"
  "/root/repo/src/gen/erdos_renyi.cc" "src/CMakeFiles/esd_gen.dir/gen/erdos_renyi.cc.o" "gcc" "src/CMakeFiles/esd_gen.dir/gen/erdos_renyi.cc.o.d"
  "/root/repo/src/gen/holme_kim.cc" "src/CMakeFiles/esd_gen.dir/gen/holme_kim.cc.o" "gcc" "src/CMakeFiles/esd_gen.dir/gen/holme_kim.cc.o.d"
  "/root/repo/src/gen/planted_partition.cc" "src/CMakeFiles/esd_gen.dir/gen/planted_partition.cc.o" "gcc" "src/CMakeFiles/esd_gen.dir/gen/planted_partition.cc.o.d"
  "/root/repo/src/gen/rmat.cc" "src/CMakeFiles/esd_gen.dir/gen/rmat.cc.o" "gcc" "src/CMakeFiles/esd_gen.dir/gen/rmat.cc.o.d"
  "/root/repo/src/gen/watts_strogatz.cc" "src/CMakeFiles/esd_gen.dir/gen/watts_strogatz.cc.o" "gcc" "src/CMakeFiles/esd_gen.dir/gen/watts_strogatz.cc.o.d"
  "/root/repo/src/gen/word_association.cc" "src/CMakeFiles/esd_gen.dir/gen/word_association.cc.o" "gcc" "src/CMakeFiles/esd_gen.dir/gen/word_association.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/esd_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/esd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
