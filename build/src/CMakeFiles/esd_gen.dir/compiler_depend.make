# Empty compiler generated dependencies file for esd_gen.
# This may be replaced when dependencies are built.
