file(REMOVE_RECURSE
  "libesd_gen.a"
)
