file(REMOVE_RECURSE
  "CMakeFiles/esd_util.dir/util/dsu.cc.o"
  "CMakeFiles/esd_util.dir/util/dsu.cc.o.d"
  "CMakeFiles/esd_util.dir/util/flat_map.cc.o"
  "CMakeFiles/esd_util.dir/util/flat_map.cc.o.d"
  "CMakeFiles/esd_util.dir/util/rng.cc.o"
  "CMakeFiles/esd_util.dir/util/rng.cc.o.d"
  "CMakeFiles/esd_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/esd_util.dir/util/thread_pool.cc.o.d"
  "CMakeFiles/esd_util.dir/util/timer.cc.o"
  "CMakeFiles/esd_util.dir/util/timer.cc.o.d"
  "libesd_util.a"
  "libesd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/esd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
