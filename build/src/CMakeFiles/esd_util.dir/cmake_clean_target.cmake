file(REMOVE_RECURSE
  "libesd_util.a"
)
