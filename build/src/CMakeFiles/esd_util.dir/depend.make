# Empty dependencies file for esd_util.
# This may be replaced when dependencies are built.
