#!/bin/sh
# Metrics exposition lint: boots esd_server, scrapes METRICS, and fails on
# malformed Prometheus text or undocumented esd_* metrics. Checks:
#   - the exposition is non-empty and "# EOF"-terminated,
#   - every line is # HELP, # TYPE, or `name[{label="v"}] value`,
#   - every # TYPE is counter|gauge|summary and is preceded by its # HELP
#     (an esd_* metric without help text is undocumented -> fail),
#   - every sample's metric (or its summary base, for _sum/_count and
#     quantile samples) carried a # TYPE.
#
# Usage: metrics_lint.sh <esd_server-binary>
#        metrics_lint.sh --file <exposition-file>
#
# --file lints an already-captured exposition (e.g. the body of an HTTP
# GET /metrics scrape from the socket front end) instead of booting a
# server itself.
set -eu

OUT="$(mktemp)"
trap 'rm -f "$OUT"' EXIT

if [ "$1" = "--file" ]; then
  cat "$2" > "$OUT"
else
  SERVER="$1"
  printf 'METRICS\nQUIT\n' | \
    "$SERVER" --dataset youtube-s --scale 0.1 --requests 200 --clients 2 \
              --threads 2 > "$OUT"
fi

# The exposition is the block from the first # HELP through # EOF; the
# burst preamble before it is not exposition text.
EXPO="$(mktemp)"
trap 'rm -f "$OUT" "$EXPO"' EXIT
sed -n '/^# HELP /,/^# EOF$/p' "$OUT" > "$EXPO"

if ! grep -q '^# EOF$' "$EXPO"; then
  echo "metrics_lint: no # EOF-terminated exposition found" >&2
  exit 1
fi

awk '
  /^# EOF$/ { saw_eof = 1; exit }
  /^# HELP / {
    if ($3 in helped) { print "duplicate # HELP: " $3; bad = 1 }
    helped[$3] = 1
    next
  }
  /^# TYPE / {
    if (!($3 in helped)) { print "undocumented metric (no # HELP): " $3; bad = 1 }
    if ($4 != "counter" && $4 != "gauge" && $4 != "summary") {
      print "bad type: " $0; bad = 1
    }
    typed[$3] = 1
    if ($3 ~ /^esd_/) esd_typed++
    next
  }
  /^#/ { print "unknown comment line: " $0; bad = 1; next }
  {
    if (NF != 2) { print "malformed sample: " $0; bad = 1; next }
    name = $1
    sub(/\{.*/, "", name)
    base = name
    sub(/_(sum|count)$/, "", base)
    if (!(name in typed) && !(base in typed)) {
      print "sample without # TYPE: " $0; bad = 1
    }
    if ($2 !~ /^-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$/ && \
        $2 != "+Inf" && $2 != "NaN") {
      print "malformed value: " $0; bad = 1
    }
  }
  END {
    if (!saw_eof) { print "exposition not terminated by # EOF"; bad = 1 }
    if (esd_typed < 5) {
      print "suspiciously few esd_* metrics (" esd_typed ")"; bad = 1
    }
    exit bad ? 1 : 0
  }
' "$EXPO" || { echo "metrics_lint: FAILED" >&2; exit 1; }

echo "metrics_lint: OK ($(grep -c '^# TYPE ' "$EXPO") metrics)"
