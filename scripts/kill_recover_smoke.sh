#!/bin/sh
# Kill-and-recover smoke test for the live index subsystem.
#
# Streams INSERT/DELETE/CHECKPOINT commands into a live esd_server, SIGKILLs
# the server mid-stream (at an arbitrary point in the WAL/checkpoint
# protocol), restarts it on the same --live-dir, and checks that the
# recovered state agrees with esd_cli's independent recovery-replay path:
# same applied_seq watermark and the same top-k score column.
#
# usage: kill_recover_smoke.sh <esd_server> <esd_cli> [workdir]
set -eu

SERVER=${1:?usage: kill_recover_smoke.sh <esd_server> <esd_cli> [workdir]}
CLI=${2:?usage: kill_recover_smoke.sh <esd_server> <esd_cli> [workdir]}
DIR=${3:-$(mktemp -d)}
LIVE="$DIR/live"
rm -rf "$LIVE"
mkdir -p "$LIVE"
WAL="$LIVE/wal.bin"

# Optional fault injection ($ESD_FAILPOINTS syntax, e.g.
# "snapshot.rename=1in3;wal.append=1in50"): armed in the first (killed)
# server only, so the stream runs under faults while the restart and the
# esd_cli replay recover clean — the parity assertions stay exact.
SMOKE_FAILPOINTS=${SMOKE_FAILPOINTS:-}

# Endless update stream over a fixed vertex range, with a CHECKPOINT every
# 200 updates so the kill can land before, during, or after a checkpoint.
feed() {
  i=0
  while :; do
    u=$(( (i * 7919) % 997 ))
    v=$(( (i * 104729 + 13) % 997 ))
    if [ "$u" -eq "$v" ]; then v=$(( (v + 1) % 997 )); fi
    if [ $(( i % 5 )) -eq 4 ]; then
      echo "DELETE $u $v"
    else
      echo "INSERT $u $v"
    fi
    i=$(( i + 1 ))
    if [ $(( i % 200 )) -eq 0 ]; then echo "CHECKPOINT"; fi
  done
}

feed | env ESD_FAILPOINTS="$SMOKE_FAILPOINTS" \
  "$SERVER" --dataset youtube-s --scale 0.1 --requests 50 --clients 1 \
  --threads 2 --live-dir "$LIVE" > "$DIR/server1.log" 2>&1 &
SERVER_PID=$!

# Wait until the WAL holds at least ~100 records past its 8-byte header
# (records are 29 bytes), then SIGKILL the server mid-stream. Checkpoints
# reset the file to 8 bytes, so any size past the threshold means we are
# genuinely in the middle of an un-checkpointed suffix.
THRESHOLD=2908
tries=0
while :; do
  if [ -f "$WAL" ]; then size=$(wc -c < "$WAL"); else size=0; fi
  if [ "$size" -gt "$THRESHOLD" ]; then break; fi
  if ! kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server exited before the kill point" >&2
    cat "$DIR/server1.log" >&2
    exit 1
  fi
  tries=$(( tries + 1 ))
  if [ "$tries" -gt 600 ]; then
    echo "FAIL: WAL never reached $THRESHOLD bytes" >&2
    cat "$DIR/server1.log" >&2
    exit 1
  fi
  sleep 0.05
done
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true

# Restart on the same live dir: recovery = snapshot + WAL suffix replay.
printf 'QUERY 10 2\nQUIT\n' | "$SERVER" --dataset youtube-s --scale 0.1 \
  --requests 50 --clients 1 --threads 2 --live-dir "$LIVE" \
  > "$DIR/server2.log" 2>&1

# Independent replay: esd_cli recovers the same dir read-only and builds a
# fresh index from scratch on the recovered graph.
"$CLI" --dataset youtube-s --scale 0.1 --k 10 --tau 2 --live-dir "$LIVE" \
  > "$DIR/cli.log" 2>&1

server_seq=$(grep -o 'applied_seq [0-9]*' "$DIR/server2.log" | head -1)
cli_seq=$(grep -o 'applied_seq [0-9]*' "$DIR/cli.log" | head -1)
if [ -z "$server_seq" ] || [ "$server_seq" != "$cli_seq" ]; then
  echo "FAIL: applied_seq mismatch: server='$server_seq' cli='$cli_seq'" >&2
  cat "$DIR/server2.log" "$DIR/cli.log" >&2
  exit 1
fi
if [ "$server_seq" = "applied_seq 0" ]; then
  echo "FAIL: no updates survived the kill (applied_seq 0)" >&2
  exit 1
fi

# Top-k rows print as "<rank> (u,v) <score>" in both tools; ties may order
# differently across engines, so parity is on the score column.
extract_scores() {
  grep -E '^[[:space:]]*[0-9]+[[:space:]]+\([0-9]+,[0-9]+\)' "$1" \
    | awk '{print $NF}'
}
server_scores=$(extract_scores "$DIR/server2.log")
cli_scores=$(extract_scores "$DIR/cli.log")
if [ -z "$server_scores" ] || [ "$server_scores" != "$cli_scores" ]; then
  echo "FAIL: top-k score mismatch after recovery" >&2
  echo "--- server ---" >&2
  cat "$DIR/server2.log" >&2
  echo "--- cli ---" >&2
  cat "$DIR/cli.log" >&2
  exit 1
fi

echo "PASS: kill-and-recover parity ($server_seq, scores: $(echo "$server_scores" | tr '\n' ' '))"
