#!/bin/sh
# Chaos smoke test: drive a live esd_server through a WAL outage at runtime.
#
# Uses the FAILPOINT command to make every WAL append fail with ENOSPC, then
# checks the acceptance contract of the fault-hardened live index end to end:
#   * the transition write comes back "ERR wal-error ..." (typed),
#   * later writes bounce instantly with "ERR degraded ...",
#   * QUERY keeps answering from the last published epoch,
#   * STATS reports health=read-only while the fault is armed,
#   * after FAILPOINT clearall (+ one heal interval) writes resume,
#     STATS reports health=ok with the heal counted,
#   * a restart on the same --live-dir recovers exactly the accepted writes.
#
# usage: chaos_smoke.sh <esd_server> [workdir]
set -eu

SERVER=${1:?usage: chaos_smoke.sh <esd_server> [workdir]}
DIR=${2:-$(mktemp -d)}
LIVE="$DIR/live"
rm -rf "$LIVE"
mkdir -p "$LIVE"
LOG="$DIR/chaos1.log"

fail() {
  echo "FAIL: $1" >&2
  cat "$LOG" >&2
  exit 1
}

# The sleep before the post-heal INSERT lets the read-only index's heal
# probe interval (50ms by default) elapse, so that insert is the probe.
feed() {
  printf 'INSERT 1 2\n'
  printf 'FAILPOINT wal.append error(ENOSPC)\n'
  printf 'INSERT 2 3\n'
  printf 'INSERT 3 4\n'
  printf 'QUERY 3 2\n'
  printf 'STATS\n'
  printf 'FAILPOINT clearall\n'
  sleep 0.3
  printf 'INSERT 4 5\n'
  printf 'STATS\n'
  printf 'QUIT\n'
}

feed | "$SERVER" --dataset youtube-s --scale 0.1 --requests 50 --clients 1 \
  --threads 2 --live-dir "$LIVE" > "$LOG" 2>&1 \
  || fail "server exited non-zero"

if grep -q 'sites compiled out' "$LOG"; then
  echo "SKIP: esd_server built with ESD_FAULT=OFF (no injection sites)"
  exit 0
fi

grep -q 'OK seq=1 '       "$LOG" || fail "pre-fault insert did not land"
grep -q 'ERR wal-error '  "$LOG" || fail "no typed wal-error on the outage"
grep -q 'ERR degraded '   "$LOG" || fail "no typed degraded rejection"
grep -q 'OK ok [0-9]* edges' "$LOG" || fail "QUERY stopped answering read-only"
grep -q 'OK fail points cleared' "$LOG" || fail "FAILPOINT clearall not acked"
grep -q 'OK seq=2 '       "$LOG" || fail "post-heal insert did not land"

# STATS ordering: read-only while armed, ok (with the heal counted) after.
stats1=$(grep 'accepted=' "$LOG" | sed -n 1p)
stats2=$(grep 'accepted=' "$LOG" | sed -n 2p)
case "$stats1" in
  *"health=read-only"*) ;;
  *) fail "first STATS not read-only: $stats1" ;;
esac
case "$stats1" in
  *"wal_failures=1"*) ;;
  *) fail "first STATS missing wal_failures=1: $stats1" ;;
esac
case "$stats2" in
  *"heals=1"*"health=ok"*) ;;
  *) fail "second STATS not healed: $stats2" ;;
esac

# Restart on the same live dir: exactly the two accepted writes recover.
LOG="$DIR/chaos2.log"
printf 'STATS\nQUIT\n' | "$SERVER" --dataset youtube-s --scale 0.1 \
  --requests 50 --clients 1 --threads 2 --live-dir "$LIVE" > "$LOG" 2>&1 \
  || fail "restarted server exited non-zero"
grep -q 'live_seq=2 ' "$LOG" || fail "recovery lost the accepted writes"

echo "PASS: chaos smoke (outage typed, reads survived, heal + recovery clean)"
