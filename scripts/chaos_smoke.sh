#!/bin/sh
# Chaos smoke test: drive a live esd_server through a WAL outage at runtime.
#
# Uses the FAILPOINT command to make every WAL append fail with ENOSPC, then
# checks the acceptance contract of the fault-hardened live index end to end:
#   * the transition write comes back "ERR wal-error ..." (typed),
#   * later writes bounce instantly with "ERR degraded ...",
#   * QUERY keeps answering from the last published epoch,
#   * STATS reports health=read-only while the fault is armed,
#   * after FAILPOINT clearall (+ one heal interval) writes resume,
#     STATS reports health=ok with the heal counted,
#   * a restart on the same --live-dir recovers exactly the accepted writes.
#
# usage: chaos_smoke.sh <esd_server> [workdir]
set -eu

SERVER=${1:?usage: chaos_smoke.sh <esd_server> [workdir]}
DIR=${2:-$(mktemp -d)}
LIVE="$DIR/live"
rm -rf "$LIVE"
mkdir -p "$LIVE"
LOG="$DIR/chaos1.log"

fail() {
  echo "FAIL: $1" >&2
  cat "$LOG" >&2
  exit 1
}

# The sleep before the post-heal INSERT lets the read-only index's heal
# probe interval (50ms by default) elapse, so that insert is the probe.
feed() {
  printf 'INSERT 1 2\n'
  printf 'FAILPOINT wal.append error(ENOSPC)\n'
  printf 'INSERT 2 3\n'
  printf 'INSERT 3 4\n'
  printf 'QUERY 3 2\n'
  printf 'STATS\n'
  printf 'FAILPOINT clearall\n'
  sleep 0.3
  printf 'INSERT 4 5\n'
  printf 'STATS\n'
  printf 'QUIT\n'
}

feed | "$SERVER" --dataset youtube-s --scale 0.1 --requests 50 --clients 1 \
  --threads 2 --live-dir "$LIVE" > "$LOG" 2>&1 \
  || fail "server exited non-zero"

if grep -q 'sites compiled out' "$LOG"; then
  echo "SKIP: esd_server built with ESD_FAULT=OFF (no injection sites)"
  exit 0
fi

grep -q 'OK seq=1 '       "$LOG" || fail "pre-fault insert did not land"
grep -q 'ERR wal-error '  "$LOG" || fail "no typed wal-error on the outage"
grep -q 'ERR degraded '   "$LOG" || fail "no typed degraded rejection"
grep -q 'OK ok [0-9]* edges' "$LOG" || fail "QUERY stopped answering read-only"
grep -q 'OK fail points cleared' "$LOG" || fail "FAILPOINT clearall not acked"
grep -q 'OK seq=2 '       "$LOG" || fail "post-heal insert did not land"

# STATS ordering: read-only while armed, ok (with the heal counted) after.
stats1=$(grep 'accepted=' "$LOG" | sed -n 1p)
stats2=$(grep 'accepted=' "$LOG" | sed -n 2p)
case "$stats1" in
  *"health=read-only"*) ;;
  *) fail "first STATS not read-only: $stats1" ;;
esac
case "$stats1" in
  *"wal_failures=1"*) ;;
  *) fail "first STATS missing wal_failures=1: $stats1" ;;
esac
case "$stats2" in
  *"heals=1"*"health=ok"*) ;;
  *) fail "second STATS not healed: $stats2" ;;
esac

# Restart on the same live dir: exactly the two accepted writes recover.
LOG="$DIR/chaos2.log"
printf 'STATS\nQUIT\n' | "$SERVER" --dataset youtube-s --scale 0.1 \
  --requests 50 --clients 1 --threads 2 --live-dir "$LIVE" > "$LOG" 2>&1 \
  || fail "recovery lost the accepted writes (server exited non-zero)"
grep -q 'live_seq=2 ' "$LOG" || fail "recovery lost the accepted writes"

# ---------------------------------------------------------------------------
# Shard-outage drill: kill one shard's WAL in a 3-shard fleet, check that
#   * the broadcast write still lands (fleet OK, laggard queued for replay),
#   * partial queries answer with the degraded shard excluded (shards=2/1/0),
#   * strict queries bounce typed (shards-unavailable),
#   * after clearall + REFREEZE the laggard replays and the fleet is whole,
#   * a restarted sharded fleet answers byte-identically to an unsharded
#     server that applied the same update history (exact-parity phase).
FLEET="$DIR/fleet"
rm -rf "$FLEET"
mkdir -p "$FLEET"
LOG="$DIR/chaos3.log"

feed_shards() {
  printf 'INSERT 1 2\n'
  printf 'FAILPOINT wal.append.shard0 error(ENOSPC)\n'
  printf 'INSERT 2 3\n'
  printf 'QUERY 5 2\n'
  printf 'QUERY 5 2 STRICT\n'
  printf 'SHARDS\n'
  printf 'FAILPOINT clearall\n'
  # The server may lag stdin (the pipe buffers the whole script while it
  # is still starting up), so one sleep before one REFREEZE can execute
  # before the laggard's heal-probe interval has elapsed. Spreading
  # repeated REFREEZE attempts over several seconds of feed time makes
  # the late ones land after the probe is due no matter how slow startup
  # was; once healed, the extras are no-ops.
  i=0
  while [ "$i" -lt 16 ]; do
    sleep 0.5
    printf 'REFREEZE\n'
    i=$((i + 1))
  done
  printf 'SHARDS\n'
  printf 'QUERY 5 2\n'
  printf 'QUIT\n'
}

feed_shards | "$SERVER" --dataset youtube-s --scale 0.1 --requests 50 \
  --clients 1 --threads 2 --shards 3 --live-dir "$FLEET" > "$LOG" 2>&1 \
  || fail "sharded server exited non-zero"

grep -q 'OK shards_ok=3 shards_degraded=0 shards_down=0' "$LOG" \
  || fail "pre-fault broadcast insert did not land on all shards"
grep -q 'OK shards_ok=2 shards_degraded=1 shards_down=0' "$LOG" \
  || fail "faulted insert did not report the laggard shard"
grep -q 'replay queued' "$LOG" || fail "laggard was not queued for replay"
grep -q 'shards=2/1/0' "$LOG" || fail "partial query did not exclude shard 0"
grep -q 'OK shards-unavailable 0 edges' "$LOG" \
  || fail "strict query was not rejected typed"
grep -q 'shard 0 state=degraded health=read-only' "$LOG" \
  || fail "SHARDS did not show shard 0 read-only"
grep -q 'OK shards=3 ok=3 degraded=0 down=0' "$LOG" \
  || fail "fleet did not heal to 3/0/0"
grep 'shard 0 state=ok' "$LOG" | grep -q 'replayed=[1-9]' \
  || fail "healed shard 0 shows no replayed updates"
grep -q 'shards=3/0/0' "$LOG" || fail "post-heal query not whole-fleet"

# Exact-parity phase: the restarted fleet vs an unsharded server that
# applied the same history must print identical top-k edge lines.
LOG="$DIR/chaos4.log"
printf 'QUERY 5 2\nQUIT\n' | "$SERVER" --dataset youtube-s --scale 0.1 \
  --requests 50 --clients 1 --threads 2 --shards 3 --live-dir "$FLEET" \
  > "$LOG" 2>&1 || fail "restarted sharded server exited non-zero"
grep '^  [0-9][0-9]* (' "$LOG" > "$DIR/parity_sharded.txt"
test -s "$DIR/parity_sharded.txt" || fail "restarted fleet returned no edges"

REFLOG="$DIR/chaos5.log"
REFDIR="$DIR/unsharded_ref"
rm -rf "$REFDIR"
printf 'INSERT 1 2\nINSERT 2 3\nREFREEZE\nQUERY 5 2\nQUIT\n' | \
  "$SERVER" --dataset youtube-s --scale 0.1 --requests 50 --clients 1 \
  --threads 2 --live-dir "$REFDIR" > "$REFLOG" 2>&1 \
  || fail "unsharded reference server exited non-zero"
grep '^  [0-9][0-9]* (' "$REFLOG" > "$DIR/parity_unsharded.txt"

diff "$DIR/parity_sharded.txt" "$DIR/parity_unsharded.txt" > /dev/null || {
  echo "FAIL: healed fleet diverged from the unsharded reference" >&2
  diff "$DIR/parity_sharded.txt" "$DIR/parity_unsharded.txt" >&2 || true
  exit 1
}

echo "PASS: chaos smoke (outage typed, reads survived, heal + recovery clean," \
     "shard drill partial/strict/heal/parity clean)"
