#!/usr/bin/env bash
# Socket smoke test: boot `esd_server --listen`, then drive it over real TCP
# connections the way the stdin smokes drive the pipe:
#   * text mode QUERY/STATS over the socket answer in the stdin dialect
#     (per-request telemetry line, net_* counters in STATS),
#   * GET /metrics on the same port serves a Prometheus exposition that
#     passes scripts/metrics_lint.sh unchanged,
#   * stdin EOF does NOT tear the server down while the listener is live
#     (stdin is closed before the first connection is made),
#   * SIGTERM triggers the graceful drain: the process exits zero and the
#     drain line proves every accepted connection was closed with nothing
#     left in flight and zero parse errors.
#
# Bash (not sh) for /dev/tcp: the CI runners and the dev container have no
# netcat, and /dev/tcp needs no extra binary.
#
# usage: socket_smoke.sh <esd_server> <metrics_lint.sh> [workdir]
set -eu

SERVER=${1:?usage: socket_smoke.sh <esd_server> <metrics_lint.sh> [workdir]}
LINT=${2:?usage: socket_smoke.sh <esd_server> <metrics_lint.sh> [workdir]}
DIR=${3:-$(mktemp -d)}
mkdir -p "$DIR"
LOG="$DIR/server.log"
SERVER_PID=

fail() {
  echo "FAIL: $1" >&2
  cat "$LOG" >&2 || true
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  exit 1
}

# Stdin closed from the start (< /dev/null): the EOF must not stop the
# server while --listen is active, or everything below fails to connect.
"$SERVER" --dataset youtube-s --scale 0.1 --requests 100 --clients 2 \
  --threads 2 --listen 0 < /dev/null > "$LOG" 2>&1 &
SERVER_PID=$!

# The readiness line carries the kernel-assigned port.
PORT=
for _ in $(seq 1 100); do
  PORT=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$LOG")
  [ -n "$PORT" ] && break
  kill -0 "$SERVER_PID" 2>/dev/null || fail "server exited before listening"
  sleep 0.1
done
[ -n "$PORT" ] || fail "no 'listening on' readiness line"

# Text mode: the stdin dialect over TCP. QUIT closes this connection (the
# server keeps serving), so cat sees EOF and the session self-terminates.
TEXT="$DIR/text.out"
exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "text connect failed"
printf 'QUERY 5 3\nSTATS\nQUIT\n' >&3
timeout 10 cat <&3 > "$TEXT" || fail "text session timed out"
exec 3<&- 3>&-
grep -q 'OK ok [0-9]* edges' "$TEXT" || fail "socket QUERY did not answer"
grep -q 'rid=' "$TEXT" || fail "socket QUERY lost its telemetry line"
grep -q 'net_accepts=' "$TEXT" || fail "socket STATS missing net counters"
grep -q 'health=' "$TEXT" || fail "socket STATS missing health"

# HTTP scrape on the same port: strip the response head, lint the body as
# a Prometheus exposition (same checks the METRICS pipe output gets).
SCRAPE="$DIR/scrape.out"
exec 3<>"/dev/tcp/127.0.0.1/$PORT" || fail "scrape connect failed"
printf 'GET /metrics HTTP/1.0\r\n\r\n' >&3
timeout 10 cat <&3 > "$SCRAPE" || fail "scrape timed out"
exec 3<&- 3>&-
grep -q '^HTTP/1.0 200 OK' "$SCRAPE" || fail "scrape was not a 200"
BODY="$DIR/exposition.txt"
sed '1,/^\r\{0,1\}$/d' "$SCRAPE" > "$BODY"
grep -q 'esd_net_accepts_total' "$BODY" || fail "scrape missing esd_net_*"
"$LINT" --file "$BODY" || fail "metrics lint rejected the scrape body"

# Graceful drain: SIGTERM, the process exits zero on its own, and the
# drain line accounts for every connection with zero parse errors.
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" || fail "server exited non-zero after SIGTERM"
grep -q 'net: drained' "$LOG" || fail "no drain line after SIGTERM"
DRAIN=$(grep 'net: drained' "$LOG")
case "$DRAIN" in
  *"inflight=0"*) ;;
  *) fail "drain left requests in flight: $DRAIN" ;;
esac
case "$DRAIN" in
  *"parse_errors=0"*) ;;
  *) fail "drain counted parse errors: $DRAIN" ;;
esac

echo "PASS: socket smoke (text dialect, lintable scrape, graceful drain)"
