// Command-line tool: load a SNAP-format edge list (or generate a built-in
// dataset), build an ESD query engine, and answer top-k structural
// diversity queries.
//
// Usage:
//   esd_cli --file <edge_list> [--k 10] [--tau 2] [--engine NAME]
//           [--save-index <path>] [--load-index <path>] [--explain]
//   esd_cli --dataset pokec-s [--scale 0.2] [--k 10] [--tau 2]
//
// --explain re-runs the query with per-stage attribution (the same stage
// taxonomy the serving layer uses: slab_scan / padding_scan / merge) and
// prints where the time went. On a frozen engine the stages are timed
// individually; other engines execute as one opaque stage.
//
// Engines: treap (the paper's index), frozen (read-optimized serving
// image), dynamic (maintained index), online / online-mindeg (index-free
// BFS). --online is a shorthand for --engine online. --save-index writes
// the record format for treap and the frozen array image for frozen;
// --load-index accepts either file version for either engine.
//
// --scorer picks the diversity definition the engine ranks by: esd (the
// paper's component-count score, default), truss (k-truss cohesion of the
// ego components), or egobw (top-k ego-betweenness). Saved index files are
// stamped with the scorer id; loading a file built for a different scorer
// is a typed error, never silently wrong answers.
//
// With --live-dir the tool first recovers the graph a live server left in
// that directory (checkpoint snapshot + WAL suffix, read-only — torn tails
// are tolerated but not compacted) and then builds the engine from scratch
// on the recovered graph. This is the independent replay path the
// kill-and-recover smoke test compares a restarted esd_server against.
//
// Examples:
//   build/examples/esd_cli --dataset dblp-s --scale 0.1 --k 5 --tau 2
//   build/examples/esd_cli --file my_graph.txt --k 20 --tau 3 --online
//   build/examples/esd_cli --dataset pokec-s --engine frozen --save-index p.esdx
//   build/examples/esd_cli --dataset pokec-s --load-index p.esdx --k 5
//   build/examples/esd_cli --dataset dblp-s --live-dir /tmp/esd_live --k 5

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>

#include "cliques/triangle.h"
#include "cliques/truss.h"
#include "core/esd_index.h"
#include "core/frozen_index.h"
#include "core/index_io.h"
#include "core/query_engine.h"
#include "esd_version.h"
#include "gen/datasets.h"
#include "graph/connectivity.h"
#include "graph/core_decomposition.h"
#include "graph/io.h"
#include "live/recovery.h"
#include "live/wal.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "esd_cli %s\n"
               "usage: esd_cli (--file <edge_list> | --dataset <name>)\n"
               "               [--scale S] [--k K] [--tau T] [--engine E]\n"
               "               [--scorer esd|truss|egobw]\n"
               "               [--online] [--stats] [--metrics] [--explain]\n"
               "               [--save-index P] [--load-index P]\n"
               "               [--live-dir DIR]\n"
               "engines:",
               esd::kVersionString);
  for (const std::string& name : esd::core::QueryEngineNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\nscorers:");
  for (const std::string& name : esd::core::ScorerNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\ndatasets:");
  for (const std::string& name : esd::gen::StandardDatasetNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esd;

  std::string file, dataset, save_index, load_index, live_dir;
  std::string engine_name = "treap";
  std::string scorer_name = "esd";
  double scale = 1.0;
  uint32_t k = 10, tau = 2;
  bool stats = false;
  bool metrics = false;
  bool explain = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--file") {
      file = next();
    } else if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--k") {
      k = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--tau") {
      tau = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--engine") {
      engine_name = next();
    } else if (arg == "--scorer") {
      scorer_name = next();
    } else if (arg == "--online") {
      engine_name = "online";
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--metrics") {
      metrics = true;
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--save-index") {
      save_index = next();
    } else if (arg == "--load-index") {
      load_index = next();
    } else if (arg == "--live-dir") {
      live_dir = next();
    } else {
      Usage();
      return 2;
    }
  }
  if (file.empty() == dataset.empty()) {  // exactly one source required
    Usage();
    return 2;
  }
  const core::DiversityScorer* scorer = core::FindScorer(scorer_name);
  if (scorer == nullptr) {
    std::fprintf(stderr, "error: unknown scorer '%s' (expected one of:",
                 scorer_name.c_str());
    for (const std::string& name : core::ScorerNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }

  graph::Graph g;
  if (!file.empty()) {
    std::string error;
    if (!graph::LoadEdgeList(file, &g, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  } else {
    bool known = false;
    for (const std::string& name : gen::StandardDatasetNames()) {
      known |= name == dataset;
    }
    if (!known) {
      Usage();
      return 2;
    }
    g = gen::LoadStandardDataset(dataset, scale).graph;
  }
  if (!live_dir.empty()) {
    // Recovery-replay: the loaded graph is only the bootstrap; the real
    // graph is whatever the live server made durable in `live_dir`.
    live::RecoveryOptions options;
    options.wal_path = live_dir + "/wal.bin";
    options.snapshot_path = live_dir + "/snapshot.bin";
    options.truncate_torn_tail = false;  // read-only inspection
    options.expected_scorer = scorer->Kind();
    live::RecoveredState state;
    std::string error;
    if (!live::Recover(g, options, &state, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("recovered from %s: snapshot %s, replayed %llu wal records, "
                "wal tail %s, applied_seq %llu\n",
                live_dir.c_str(), state.snapshot_loaded ? "loaded" : "absent",
                static_cast<unsigned long long>(state.replay_applied),
                live::WalTailStatusName(state.wal.tail),
                static_cast<unsigned long long>(state.applied_seq));
    g = state.graph.Snapshot();
  }
  std::printf("graph: n=%u m=%u dmax=%u\n", g.NumVertices(), g.NumEdges(),
              g.MaxDegree());

  if (stats) {
    graph::CoreDecomposition cores = graph::ComputeCores(g);
    graph::Components comps = graph::ConnectedComponents(g);
    uint64_t triangles = cliques::CountTriangles(g);
    cliques::TrussDecomposition truss = cliques::ComputeTrussness(g);
    std::printf("degeneracy:           %u\n", cores.degeneracy);
    std::printf("connected components: %zu\n", comps.NumComponents());
    std::printf("triangles:            %llu\n",
                static_cast<unsigned long long>(triangles));
    std::printf("clustering coeff:     %.4f\n",
                cliques::GlobalClusteringCoefficient(g));
    std::printf("max trussness:        %u\n", truss.max_trussness);
    std::printf("arboricity bounds:    [%u, %u]\n",
                graph::ArboricityLowerBound(g), cores.degeneracy);
  }

  util::Timer timer;
  std::unique_ptr<core::EsdQueryEngine> engine;
  if (!load_index.empty()) {
    // Checked loads: a file stamped for a different scorer is refused.
    if (engine_name == "treap") {
      core::EsdIndex index;
      const core::IndexIoResult res =
          core::LoadIndex(load_index, &index, scorer->Kind());
      if (!res) {
        std::fprintf(stderr, "error: %s\n", res.message.c_str());
        return 1;
      }
      engine = std::make_unique<core::EsdIndex>(std::move(index));
    } else if (engine_name == "frozen") {
      core::FrozenEsdIndex index;
      const core::IndexIoResult res =
          core::LoadFrozenIndex(load_index, &index, scorer->Kind());
      if (!res) {
        std::fprintf(stderr, "error: %s\n", res.message.c_str());
        return 1;
      }
      engine = std::make_unique<core::FrozenEsdIndex>(std::move(index));
    } else {
      std::fprintf(stderr,
                   "error: --load-index requires --engine treap or frozen\n");
      return 2;
    }
    std::printf("%s engine loaded from %s: %.1f ms\n", engine_name.c_str(),
                load_index.c_str(), timer.ElapsedMillis());
  } else {
    std::string error;
    engine = core::BuildQueryEngine(g, engine_name, *scorer, &error);
    if (engine == nullptr) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::printf("%s engine build (%s scorer): %.1f ms\n", engine_name.c_str(),
                std::string(scorer->Name()).c_str(), timer.ElapsedMillis());
  }
  std::printf("engine memory: %.2f MiB\n",
              static_cast<double>(engine->MemoryBytes()) / (1024.0 * 1024.0));

  if (!save_index.empty()) {
    std::string error;
    bool ok;
    // The file version follows the engine: treap writes records, frozen
    // writes the array image (either loads back into either engine); both
    // carry the engine's scorer id.
    if (auto* treap = dynamic_cast<const core::EsdIndex*>(engine.get())) {
      ok = core::SaveIndex(*treap, save_index, &error);
    } else if (auto* frozen =
                   dynamic_cast<const core::FrozenEsdIndex*>(engine.get())) {
      ok = core::SaveFrozenIndex(*frozen, save_index, &error);
    } else {
      std::fprintf(stderr,
                   "error: --save-index requires --engine treap or frozen\n");
      return 2;
    }
    if (!ok) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("index saved to %s\n", save_index.c_str());
  }

  timer.Reset();
  core::TopKResult result = engine->Query(k, tau);
  std::printf("%s query: %.3f ms\n", engine_name.c_str(),
              timer.ElapsedMillis());

  std::printf("\ntop-%u edges (tau=%u, scorer=%s):\n", k, tau,
              std::string(scorer->Name()).c_str());
  std::printf("%-6s %-14s %s\n", "rank", "edge", "score");
  for (size_t i = 0; i < result.size(); ++i) {
    std::printf("%-6zu (%u,%u)%-6s %u\n", i + 1, result[i].edge.u,
                result[i].edge.v, "", result[i].score);
  }

  if (explain) {
    // Attributed re-run: the same query, timed per stage with the serving
    // layer's taxonomy. A frozen engine decomposes (its padded result is
    // QueryAtSlab(pad=false) + PadQueryResult by construction); any other
    // engine runs as one opaque slab_scan stage.
    obs::RequestContext ctx;
    ctx.request_id = obs::RequestContext::MintId();
    ctx.admit_ns = obs::MonotonicNanos();
    core::TopKResult explained;
    const uint64_t t0 = obs::MonotonicNanos();
    if (auto* frozen =
            dynamic_cast<const core::FrozenEsdIndex*>(engine.get())) {
      const size_t slab = frozen->FindSlab(tau);
      explained = frozen->QueryAtSlab(slab, k, false);
      const uint64_t t2 = obs::MonotonicNanos();
      frozen->PadQueryResult(slab, k, &explained);
      const uint64_t t3 = obs::MonotonicNanos();
      // FindSlab rides inside slab_scan, matching the serving layer's
      // attribution of the same path.
      ctx.Charge(obs::Stage::kSlabScan, t2 - t0);
      ctx.Charge(obs::Stage::kPaddingScan, t3 - t2);
    } else {
      explained = engine->Query(k, tau);
      ctx.Charge(obs::Stage::kSlabScan, obs::MonotonicNanos() - t0);
    }
    std::printf("\nexplain rid=%llu (%s engine, k=%u, tau=%u): %zu edges, "
                "%.1f us attributed\n",
                static_cast<unsigned long long>(ctx.request_id),
                engine_name.c_str(), k, tau, explained.size(),
                static_cast<double>(ctx.AttributedNanos()) * 1e-3);
    const double total =
        static_cast<double>(ctx.AttributedNanos() > 0 ? ctx.AttributedNanos()
                                                      : 1);
    for (size_t s = 0; s < obs::kNumStages; ++s) {
      const auto stage = static_cast<obs::Stage>(s);
      if (ctx.StageNanos(stage) == 0) continue;
      std::printf("  %-16s %10.1f us  (%.1f%%)\n", obs::StageName(stage),
                  ctx.StageMicros(stage),
                  100.0 * static_cast<double>(ctx.StageNanos(stage)) / total);
    }
  }

  // Per-engine work counters, reachable through the interface for every
  // engine (the online adapter reports its pruning power here).
  const core::EngineCounters counters = engine->Counters();
  std::printf(
      "\nengine counters: queries=%llu slab_searches=%llu "
      "entries_scanned=%llu heap_pops=%llu exact=%llu zero_bound_skips=%llu\n",
      static_cast<unsigned long long>(counters.queries),
      static_cast<unsigned long long>(counters.slab_searches),
      static_cast<unsigned long long>(counters.entries_scanned),
      static_cast<unsigned long long>(counters.heap_pops),
      static_cast<unsigned long long>(counters.exact_computations),
      static_cast<unsigned long long>(counters.zero_bound_skips));

  if (metrics) {
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    core::ExportEngineCounters(*engine, &registry);
    std::printf("\n%s", registry.PrometheusText().c_str());
  }
  return 0;
}
