// Command-line tool: load a SNAP-format edge list (or generate a built-in
// dataset), build the ESDIndex, and answer top-k structural diversity
// queries.
//
// Usage:
//   esd_cli --file <edge_list> [--k 10] [--tau 2] [--online]
//           [--save-index <path>] [--load-index <path>]
//   esd_cli --dataset pokec-s [--scale 0.2] [--k 10] [--tau 2]
//
// Examples:
//   build/examples/esd_cli --dataset dblp-s --scale 0.1 --k 5 --tau 2
//   build/examples/esd_cli --file my_graph.txt --k 20 --tau 3 --online
//   build/examples/esd_cli --dataset pokec-s --save-index pokec.esdx
//   build/examples/esd_cli --dataset pokec-s --load-index pokec.esdx --k 5

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "cliques/triangle.h"
#include "cliques/truss.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/index_io.h"
#include "core/online_topk.h"
#include "esd_version.h"
#include "gen/datasets.h"
#include "graph/connectivity.h"
#include "graph/core_decomposition.h"
#include "graph/io.h"
#include "util/timer.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "esd_cli %s\n"
               "usage: esd_cli (--file <edge_list> | --dataset <name>)\n"
               "               [--scale S] [--k K] [--tau T] [--online]\n"
               "               [--stats] [--save-index P] [--load-index P]\n"
               "datasets:",
               esd::kVersionString);
  for (const std::string& name : esd::gen::StandardDatasetNames()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esd;

  std::string file, dataset, save_index, load_index;
  double scale = 1.0;
  uint32_t k = 10, tau = 2;
  bool online = false, stats = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--file") {
      file = next();
    } else if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--k") {
      k = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--tau") {
      tau = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--online") {
      online = true;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--save-index") {
      save_index = next();
    } else if (arg == "--load-index") {
      load_index = next();
    } else {
      Usage();
      return 2;
    }
  }
  if (file.empty() == dataset.empty()) {  // exactly one source required
    Usage();
    return 2;
  }

  graph::Graph g;
  if (!file.empty()) {
    std::string error;
    if (!graph::LoadEdgeList(file, &g, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  } else {
    bool known = false;
    for (const std::string& name : gen::StandardDatasetNames()) {
      known |= name == dataset;
    }
    if (!known) {
      Usage();
      return 2;
    }
    g = gen::LoadStandardDataset(dataset, scale).graph;
  }
  std::printf("graph: n=%u m=%u dmax=%u\n", g.NumVertices(), g.NumEdges(),
              g.MaxDegree());

  if (stats) {
    graph::CoreDecomposition cores = graph::ComputeCores(g);
    graph::Components comps = graph::ConnectedComponents(g);
    uint64_t triangles = cliques::CountTriangles(g);
    cliques::TrussDecomposition truss = cliques::ComputeTrussness(g);
    std::printf("degeneracy:           %u\n", cores.degeneracy);
    std::printf("connected components: %zu\n", comps.NumComponents());
    std::printf("triangles:            %llu\n",
                static_cast<unsigned long long>(triangles));
    std::printf("clustering coeff:     %.4f\n",
                cliques::GlobalClusteringCoefficient(g));
    std::printf("max trussness:        %u\n", truss.max_trussness);
    std::printf("arboricity bounds:    [%u, %u]\n",
                graph::ArboricityLowerBound(g), cores.degeneracy);
  }

  util::Timer timer;
  core::TopKResult result;
  if (online) {
    result =
        core::OnlineTopK(g, k, tau, core::UpperBoundRule::kCommonNeighbor);
    std::printf("OnlineBFS+ query: %.1f ms\n", timer.ElapsedMillis());
  } else {
    core::EsdIndex index;
    if (!load_index.empty()) {
      std::string error;
      if (!core::LoadIndex(load_index, &index, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      std::printf("ESDIndex loaded from %s: %.1f ms (%zu lists, %llu "
                  "entries)\n",
                  load_index.c_str(), timer.ElapsedMillis(), index.NumLists(),
                  static_cast<unsigned long long>(index.NumEntries()));
    } else {
      index = core::BuildIndexClique(g);
      std::printf("ESDIndex+ build: %.1f ms (%zu lists, %llu entries)\n",
                  timer.ElapsedMillis(), index.NumLists(),
                  static_cast<unsigned long long>(index.NumEntries()));
    }
    if (!save_index.empty()) {
      std::string error;
      if (!core::SaveIndex(index, save_index, &error)) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      std::printf("index saved to %s\n", save_index.c_str());
    }
    timer.Reset();
    result = index.Query(k, tau);
    std::printf("IndexSearch query: %.3f ms\n", timer.ElapsedMillis());
  }

  std::printf("\ntop-%u edges (tau=%u):\n", k, tau);
  std::printf("%-6s %-14s %s\n", "rank", "edge", "score");
  for (size_t i = 0; i < result.size(); ++i) {
    std::printf("%-6zu (%u,%u)%-6s %u\n", i + 1, result[i].edge.u,
                result[i].edge.v, "", result[i].score);
  }
  return 0;
}
