// Streaming maintenance (Section V): keep the ESDIndex current while edges
// arrive and disappear, and compare the incremental cost against rebuilding
// from scratch after every update.
//
// Run: build/examples/dynamic_stream

#include <cstdio>
#include <vector>

#include "core/dynamic_index.h"
#include "core/index_builder.h"
#include "gen/holme_kim.h"
#include "util/rng.h"
#include "util/timer.h"

int main() {
  using namespace esd;

  graph::Graph g = gen::HolmeKim(4000, 6, 0.4, /*seed=*/99);
  std::printf("base graph: n=%u m=%u\n", g.NumVertices(), g.NumEdges());

  util::Timer timer;
  core::DynamicEsdIndex dyn(g, core::DeletionStrategy::kTargeted);
  std::printf("initial index build: %.1f ms (%llu entries)\n\n",
              timer.ElapsedMillis(),
              static_cast<unsigned long long>(dyn.Index().NumEntries()));

  util::Rng rng(4242);
  const int kUpdates = 200;
  double insert_ms = 0, delete_ms = 0;
  size_t touched = 0;
  std::vector<graph::Edge> inserted;
  timer.Reset();
  for (int i = 0; i < kUpdates; ++i) {
    graph::VertexId u, v;
    do {
      u = static_cast<graph::VertexId>(rng.NextBounded(g.NumVertices()));
      v = static_cast<graph::VertexId>(rng.NextBounded(g.NumVertices()));
    } while (u == v || dyn.CurrentGraph().HasEdge(u, v));
    util::Timer one;
    dyn.InsertEdge(u, v);
    insert_ms += one.ElapsedMillis();
    touched += dyn.LastUpdateTouchedEdges();
    inserted.push_back(graph::MakeEdge(u, v));
  }
  std::printf("%d insertions: avg %.3f ms, avg %.1f edges touched\n",
              kUpdates, insert_ms / kUpdates,
              static_cast<double>(touched) / kUpdates);

  touched = 0;
  for (const graph::Edge& e : inserted) {
    util::Timer one;
    dyn.DeleteEdge(e.u, e.v);
    delete_ms += one.ElapsedMillis();
    touched += dyn.LastUpdateTouchedEdges();
  }
  std::printf("%d deletions:  avg %.3f ms, avg %.1f edges touched\n",
              kUpdates, delete_ms / kUpdates,
              static_cast<double>(touched) / kUpdates);

  // The alternative: rebuild the whole index once.
  timer.Reset();
  core::EsdIndex rebuilt = core::BuildIndexClique(g);
  double rebuild_ms = timer.ElapsedMillis();
  std::printf("\nfull rebuild: %.1f ms -> incremental updates are %.0fx\n",
              rebuild_ms,
              rebuild_ms / ((insert_ms + delete_ms) / (2.0 * kUpdates)));

  // Sanity: after inserting and deleting the same edges, queries agree with
  // a fresh build.
  auto a = dyn.Query(5, 2);
  auto b = rebuilt.Query(5, 2);
  std::printf("\ntop-5 (tau=2) after churn, maintained vs rebuilt:\n");
  for (size_t i = 0; i < a.size(); ++i) {
    std::printf("  score %u vs %u\n", a[i].score, b[i].score);
  }
  return 0;
}
