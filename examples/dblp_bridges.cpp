// Research-community bridges (the paper's Exp-7 / Fig. 12): on a DBLP-like
// co-authorship network, contrast the edges favored by three rankings:
//   ESD — structural diversity (this paper): strong ties spanning many
//         research communities;
//   CN  — common-neighbor count: strong ties inside one dense community;
//   BT  — edge betweenness: weak ties joining two otherwise-distant blobs.
//
// Run: build/examples/dblp_bridges

#include <cstdio>
#include <set>
#include <vector>

#include "baselines/betweenness.h"
#include "baselines/common_neighbor.h"
#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "gen/collaboration.h"
#include "graph/connectivity.h"

namespace {

using esd::core::ScoredEdge;
using esd::gen::CollaborationGraph;
using esd::graph::Edge;
using esd::graph::Graph;

// How many distinct communities appear among the edge's common neighbors?
uint32_t CommunitySpan(const CollaborationGraph& net, const Edge& e) {
  std::set<uint32_t> comms;
  for (auto w : esd::graph::CommonNeighbors(net.graph, e.u, e.v)) {
    comms.insert(net.community[w]);
  }
  return static_cast<uint32_t>(comms.size());
}

void Describe(const CollaborationGraph& net, const char* method,
              const std::vector<ScoredEdge>& edges) {
  std::printf("%s top edges:\n", method);
  for (const ScoredEdge& se : edges) {
    auto sizes =
        esd::core::EgoComponentSizes(net.graph, se.edge.u, se.edge.v);
    std::printf(
        "  %s -- %s: value %-5u ego components %-3zu community span %u\n",
        net.author_names[se.edge.u].c_str(),
        net.author_names[se.edge.v].c_str(), se.score, sizes.size(),
        CommunitySpan(net, se.edge));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace esd;

  gen::CollaborationParams params;
  params.num_authors = 6000;
  params.num_papers = 9000;
  params.num_communities = 20;
  params.barbell_clique_size = 35;  // big enough blobs for BT to notice
  gen::CollaborationGraph net = gen::GenerateCollaboration(params, 17);
  const Graph& g = net.graph;
  std::printf("co-authorship network: n=%u m=%u\n\n", g.NumVertices(),
              g.NumEdges());

  const uint32_t k = 5, tau = 2;

  core::EsdIndex index = core::BuildIndexClique(g);
  Describe(net, "ESD (this paper)",
           index.Query(k, tau, /*pad_with_zero_edges=*/false));
  Describe(net, "CN (common neighbors)",
           baselines::TopKByCommonNeighbors(g, k));
  Describe(net, "BT (betweenness)",
           baselines::TopKByBetweenness(g, k, /*num_sources=*/400).edges);

  std::printf(
      "Reading the three lists: ESD surfaces the planted bridge authors —\n"
      "prolific pairs whose co-authors split into many unrelated groups.\n"
      "CN picks intra-community powerhouses (one or two big components).\n"
      "BT picks barbell joints: high traffic, but the endpoints share no\n"
      "co-authors at all (a weak tie).\n");
  return 0;
}
