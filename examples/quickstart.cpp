// Quickstart: build a small graph, compute edge structural diversities, and
// answer top-k queries three ways (naive, online, index).
//
// Run: build/examples/quickstart

#include <cstdio>

#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/naive_topk.h"
#include "core/online_topk.h"
#include "graph/builder.h"

int main() {
  using namespace esd;

  // A toy social graph: two friend circles meeting through the edge (0,1).
  //   Circle A: {2,3} know each other and both know 0 and 1.
  //   Circle B: {4,5} likewise.
  //   Vertex 6 knows 0 and 1 but nobody else (an isolated context).
  graph::GraphBuilder builder(7);
  builder.AddEdge(0, 1);
  for (graph::VertexId w : {2, 3, 4, 5, 6}) {
    builder.AddEdge(0, w);
    builder.AddEdge(1, w);
  }
  builder.AddEdge(2, 3);
  builder.AddEdge(4, 5);
  graph::Graph g = builder.Build();

  std::printf("graph: n=%u m=%u\n\n", g.NumVertices(), g.NumEdges());

  // The structural diversity of (0,1): its ego-network {2,3,4,5,6} has
  // components {2,3}, {4,5}, {6}.
  for (uint32_t tau = 1; tau <= 3; ++tau) {
    std::printf("score(0,1) at tau=%u: %u\n", tau,
                core::EdgeScore(g, 0, 1, tau));
  }

  const uint32_t k = 3, tau = 2;

  std::printf("\ntop-%u edges at tau=%u\n", k, tau);
  std::printf("%-12s %-12s %-12s\n", "algorithm", "edge", "score");
  for (const auto& se : core::NaiveTopK(g, k, tau)) {
    std::printf("%-12s (%u,%u)%-7s %u\n", "naive", se.edge.u, se.edge.v, "",
                se.score);
  }
  for (const auto& se : core::OnlineTopK(g, k, tau,
                                         core::UpperBoundRule::kCommonNeighbor)) {
    std::printf("%-12s (%u,%u)%-7s %u\n", "online", se.edge.u, se.edge.v, "",
                se.score);
  }

  // Index-based: build once, query in O(k log m + log n).
  core::EsdIndex index = core::BuildIndexClique(g);
  std::printf("index: %zu lists, %llu entries\n", index.NumLists(),
              static_cast<unsigned long long>(index.NumEntries()));
  for (const auto& se : index.Query(k, tau)) {
    std::printf("%-12s (%u,%u)%-7s %u\n", "index", se.edge.u, se.edge.v, "",
                se.score);
  }
  return 0;
}
