// Dataset generator tool: writes any of the library's synthetic graph
// models to a SNAP-format edge list, so users can create reproducible test
// data without writing code.
//
// Usage:
//   graph_gen --model <name> --out <file> [--n N] [--m M] [--seed S]
//             [--attach A] [--p P]
//
// Models:
//   er       Erdős–Rényi G(n, m)                (uses --n, --m)
//   ba       Barabási–Albert                    (uses --n, --attach)
//   hk       Holme–Kim powerlaw-cluster         (uses --n, --attach, --p)
//   ws       Watts–Strogatz                     (uses --n, --attach=k, --p)
//   rmat     R-MAT (skewed)                     (uses --n rounded to 2^s, --m)
//   cl       Chung–Lu power-law                 (uses --n, --p=gamma)
//   collab   DBLP-like co-authorship            (uses --n)
//   words    word-association network           (uses --n background words)
//   dataset  a Table-I stand-in by name         (--name youtube-s ... )
//
// Examples:
//   graph_gen --model hk --n 10000 --attach 6 --p 0.5 --out social.txt
//   graph_gen --model dataset --name dblp-s --out dblp_s.txt

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "gen/barabasi_albert.h"
#include "gen/chung_lu.h"
#include "gen/collaboration.h"
#include "gen/datasets.h"
#include "gen/erdos_renyi.h"
#include "gen/holme_kim.h"
#include "gen/rmat.h"
#include "gen/watts_strogatz.h"
#include "gen/word_association.h"
#include "graph/io.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "usage: graph_gen --model "
               "(er|ba|hk|ws|rmat|cl|collab|words|dataset)\n"
               "                 --out <file> [--n N] [--m M] [--seed S]\n"
               "                 [--attach A] [--p P] [--name dataset-name]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esd;

  std::string model, out_path, name;
  uint32_t n = 1000, attach = 4;
  uint64_t m = 5000, seed = 1;
  double p = 0.5;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--model") {
      model = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--name") {
      name = next();
    } else if (arg == "--n") {
      n = static_cast<uint32_t>(std::atoll(next()));
    } else if (arg == "--m") {
      m = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--seed") {
      seed = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--attach") {
      attach = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--p") {
      p = std::atof(next());
    } else {
      Usage();
      return 2;
    }
  }
  if (model.empty() || out_path.empty()) {
    Usage();
    return 2;
  }

  graph::Graph g;
  if (model == "er") {
    g = gen::ErdosRenyiGnm(n, m, seed);
  } else if (model == "ba") {
    g = gen::BarabasiAlbert(n, attach, seed);
  } else if (model == "hk") {
    g = gen::HolmeKim(n, attach, p, seed);
  } else if (model == "ws") {
    g = gen::WattsStrogatz(n, attach, p, seed);
  } else if (model == "rmat") {
    gen::RmatParams params;
    params.scale = 1;
    while ((1u << params.scale) < n) ++params.scale;
    params.edge_factor =
        static_cast<double>(m) / static_cast<double>(1u << params.scale);
    g = gen::Rmat(params, seed);
  } else if (model == "cl") {
    g = gen::ChungLuPowerLaw(n, p > 2.0 ? p : 2.5, 2.0, n / 10.0, seed);
  } else if (model == "collab") {
    gen::CollaborationParams params;
    params.num_authors = n;
    params.num_papers = n * 3 / 2;
    g = gen::GenerateCollaboration(params, seed).graph;
  } else if (model == "words") {
    gen::WordAssociationParams params;
    params.background_words = n;
    g = gen::GenerateWordAssociation(params, seed).graph;
  } else if (model == "dataset") {
    if (name.empty()) {
      Usage();
      return 2;
    }
    g = gen::LoadStandardDataset(name).graph;
  } else {
    Usage();
    return 2;
  }

  std::string error;
  if (!graph::SaveEdgeList(g, out_path, &error)) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 1;
  }
  std::printf("wrote %s: n=%u m=%u dmax=%u\n", out_path.c_str(),
              g.NumVertices(), g.NumEdges(), g.MaxDegree());
  return 0;
}
