// Friend suggestion via pair structural diversity (Dong et al., KDD'17 —
// the work that motivated the paper): a NON-adjacent pair whose common
// neighborhood splits into many social contexts has a high probability of
// becoming connected. This example ranks candidate links on a social
// network and contrasts the diversity ranking with plain common-neighbor
// counting (the classic link-prediction score).
//
// Run: build/examples/friend_suggestion

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/ego_network.h"
#include "core/pair_diversity.h"
#include "gen/holme_kim.h"
#include "graph/graph.h"

int main() {
  using namespace esd;

  graph::Graph g = gen::HolmeKim(2500, 7, 0.55, /*seed=*/77);
  std::printf("social network: n=%u m=%u\n\n", g.NumVertices(), g.NumEdges());

  const uint32_t k = 8, tau = 2;
  std::vector<core::ScoredPair> suggestions =
      core::TopKNonAdjacentPairs(g, k, tau);

  std::printf("top-%u suggested links by pair structural diversity "
              "(tau=%u):\n",
              k, tau);
  std::printf("%-14s %-10s %-10s %s\n", "pair", "diversity", "|N(u,v)|",
              "shared contexts (component sizes)");
  for (const core::ScoredPair& p : suggestions) {
    auto common = graph::CommonNeighbors(g, p.u, p.v);
    auto sizes = core::EgoComponentSizes(g, p.u, p.v);
    char pair_label[32];
    std::snprintf(pair_label, sizeof(pair_label), "(%u,%u)", p.u, p.v);
    std::printf("%-14s %-10u %-10zu [", pair_label, p.score, common.size());
    for (size_t i = 0; i < sizes.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", sizes[i]);
    }
    std::printf("]\n");
  }

  // Contrast: the same candidates ranked purely by |N(u) ∩ N(v)|.
  std::printf("\nsame query ranked by raw common-neighbor count:\n");
  std::vector<core::ScoredPair> by_cn =
      core::TopKNonAdjacentPairs(g, 200, 1);  // tau=1 bound == CN count cap
  std::sort(by_cn.begin(), by_cn.end(),
            [&g](const core::ScoredPair& a, const core::ScoredPair& b) {
              return graph::CountCommonNeighbors(g, a.u, a.v) >
                     graph::CountCommonNeighbors(g, b.u, b.v);
            });
  for (size_t i = 0; i < std::min<size_t>(by_cn.size(), k); ++i) {
    const auto& p = by_cn[i];
    std::printf("(%u,%u): CN=%u, diversity=%u\n", p.u, p.v,
                graph::CountCommonNeighbors(g, p.u, p.v),
                core::PairScore(g, p.u, p.v, tau));
  }
  std::printf(
      "\nHigh-CN pairs share one dense circle; high-diversity pairs share\n"
      "several independent circles — Dong et al. found the latter is the\n"
      "stronger signal that the link will actually form.\n");
  return 0;
}
