// Word-sense discovery (the paper's Exp-8 / Fig. 13): in a word-association
// network, a high-structural-diversity edge is a pair of words whose shared
// associations split into several clusters — each cluster is one *sense* of
// the pair. This example regenerates the "bank–money" analysis on the
// synthetic USF-style network.
//
// Run: build/examples/word_senses

#include <cstdio>
#include <string>
#include <vector>

#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "gen/word_association.h"

int main() {
  using namespace esd;

  gen::WordAssociationParams params;
  gen::WordAssociationGraph net = gen::GenerateWordAssociation(params, 7);
  const graph::Graph& g = net.graph;
  std::printf("word association network: n=%u m=%u\n\n", g.NumVertices(),
              g.NumEdges());

  const uint32_t tau = 2, k = 2;
  core::EsdIndex index = core::BuildIndexClique(g);

  for (const auto& se : index.Query(k, tau, /*pad_with_zero_edges=*/false)) {
    const std::string& wa = net.words[se.edge.u];
    const std::string& wb = net.words[se.edge.v];
    std::printf("(\"%s\", \"%s\")  structural diversity %u\n", wa.c_str(),
                wb.c_str(), se.score);

    // The sense clusters are the ego-network's connected components.
    auto components = core::EgoComponents(g, se.edge.u, se.edge.v);
    int sense = 0;
    for (const auto& members : components) {
      std::printf("  sense %d: {", ++sense);
      for (size_t i = 0; i < members.size(); ++i) {
        std::printf("%s%s", i ? ", " : "", net.words[members[i]].c_str());
      }
      std::printf("}\n");
    }
    std::printf("\n");
  }

  std::printf(
      "Each sense cluster is one context the two words share — the paper's\n"
      "NLU use case: polysemy discovered purely from graph structure.\n");
  return 0;
}
