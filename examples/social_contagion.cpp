// Social-contagion scenario from the paper's introduction: in a social
// network, the edges with the highest structural diversity touch many
// distinct social contexts and are prime channels for information
// diffusion. This example builds a clustered scale-free network, finds
// those edges, and contrasts edge diversity with the classic *vertex*
// structural diversity of Ugander et al.
//
// Run: build/examples/social_contagion

#include <cstdio>

#include "baselines/vertex_diversity.h"
#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/score_profile.h"
#include "gen/holme_kim.h"
#include "graph/core_decomposition.h"

int main() {
  using namespace esd;

  // A 3000-user social network with hubs and tight friend clusters.
  graph::Graph g = gen::HolmeKim(3000, 8, 0.5, /*seed=*/2024);
  graph::CoreDecomposition cores = graph::ComputeCores(g);
  std::printf("social network: n=%u m=%u dmax=%u degeneracy=%u\n\n",
              g.NumVertices(), g.NumEdges(), g.MaxDegree(), cores.degeneracy);

  const uint32_t tau = 2;
  core::EsdIndex index = core::BuildIndexClique(g);

  std::printf("top-5 edges by structural diversity (tau=%u):\n", tau);
  std::printf("%-10s %-7s %-22s\n", "edge", "score", "ego components >= tau");
  for (const auto& se : index.Query(5, tau)) {
    auto sizes = core::EgoComponentSizes(g, se.edge.u, se.edge.v);
    std::printf("(%u,%u)\t %-7u [", se.edge.u, se.edge.v, se.score);
    bool first = true;
    for (uint32_t s : sizes) {
      if (s < tau) continue;
      std::printf("%s%u", first ? "" : ", ", s);
      first = false;
    }
    std::printf("]\n");
  }

  // How rare are diverse ties? The score histogram answers without
  // touching the graph again.
  core::ScoreHistogram hist = core::ComputeScoreHistogram(index, tau);
  std::printf("\nscore distribution at tau=%u: mean %.2f, max %u, ", tau,
              hist.mean, hist.max_score);
  std::printf("median %u, p99 %u\n", core::ScorePercentile(hist, 0.5),
              core::ScorePercentile(hist, 0.99));

  // Vertex structural diversity for comparison: counts contexts around a
  // single user rather than around a tie.
  std::printf("\ntop-5 users by vertex structural diversity (tau=%u):\n", tau);
  for (const auto& sv : baselines::TopKVertexDiversity(g, 5, tau)) {
    std::printf("user %-6u score %-4u degree %u\n", sv.v, sv.score,
                g.Degree(sv.v));
  }

  std::printf(
      "\nNote how the top edges connect users whose shared friends split\n"
      "into several disjoint circles: information crossing that tie can\n"
      "reach all of those circles at once, which is exactly the contagion\n"
      "amplifier the paper targets.\n");
  return 0;
}
