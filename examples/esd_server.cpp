// Demo of the serving layer: build (or load) a read-optimized
// FrozenEsdIndex, stand up an EsdQueryService on top of it, fire a burst
// of synthetic client traffic at the service from several threads, and
// print the observability snapshot — throughput, p50/p95/p99 end-to-end
// latency, queue-wait vs execute tails, admission rejects and deadline
// misses.
//
// After the burst the server reads commands from stdin until EOF/QUIT:
//   QUERY <k> <tau> [STRICT]  run one query through the service, print the
//                     edges (STRICT: fail typed instead of answering
//                     partially when any shard is degraded or down)
//   INSERT <u> <v>    (live mode) durably insert an edge
//   DELETE <u> <v>    (live mode) durably delete an edge
//   CHECKPOINT        (live mode) persist a snapshot + compact the WAL
//   STATS             one-line service metrics snapshot (+ live stats and
//                     the health=ok|degraded|read-only field)
//   METRICS           Prometheus text exposition of the global registry,
//                     terminated by a "# EOF" line
//   SLOWLOG [n]       the n (default: all retained) worst requests of the
//                     trailing window as JSON lines, worst first, each with
//                     its full per-stage attribution, tau/k, scorer, epoch,
//                     cache outcome, and health at admission
//   HISTORY [n]       the newest n (default 10) metric time-series
//                     intervals as JSON lines (qps, cache hit-rate, rates
//                     of every changed counter, changed gauges)
//   HISTORY PROM      the latest interval's rates as recording-rule-style
//                     Prometheus gauges, terminated by "# EOF"
//   FAILPOINT <name> <spec>   arm a fail point at runtime (spec syntax as
//                     in $ESD_FAILPOINTS, e.g. "error(ENOSPC)" or "off");
//                     FAILPOINT LIST enumerates every compiled-in site with
//                     live hit/fire counts; FAILPOINT clearall disarms all
//   REFREEZE          synchronously publish fresh epochs (live or sharded);
//                     with shards this quiesces the fleet to one watermark
//   SHARDS            (--shards) per-shard state/health/watermark detail
//   TRACE <path>      write collected spans as Chrome trace JSON
//   QUIT              shut down
// (With stdin at EOF — e.g. the smoke test — the loop exits immediately,
// unless --listen is active: then the server keeps serving the socket until
// SIGINT/SIGTERM or a stdin QUIT triggers the graceful drain.)
//
// With --listen PORT (0 = ephemeral; the bound port is printed on the
// "listening on" line) the same command set is served over TCP by the
// src/net/ event loop: text mode is line-compatible with stdin (nc works),
// binary-framed clients (net/client.h) get the length-prefixed protocol,
// and `GET /metrics` on the same port answers a Prometheus scrape.
//
// With --live-dir the server runs on a LiveEsdIndex: updates are logged to
// <dir>/wal.bin, folded into the writer index, and published to readers as
// immutable epochs; on startup the server recovers from <dir>/snapshot.bin
// plus the WAL suffix (surviving SIGKILL mid-stream).
//
// Usage:
//   esd_server --dataset pokec-s [--scale 0.2] [--threads 4] [--clients 8]
//              [--requests 5000] [--max-queue 1024] [--deadline-us 0]
//              [--engine frozen] [--scorer esd|truss|egobw]
//              [--live-dir <dir>] [--refreeze-every N]
//              [--slowlog N] [--history-interval-ms M] [--history-samples S]
//   esd_server --file <edge_list> [--load-index <path>] ...
//
// --scorer serves a different diversity definition on the same stack: the
// WAL, snapshot, and index files are stamped with the scorer id, so a
// --live-dir or --load-index written under another scorer is refused.
//
// Examples:
//   build/examples/esd_server --dataset pokec-s --requests 2000
//   build/examples/esd_server --dataset dblp-s --live-dir /tmp/esd_live

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/frozen_index.h"
#include "core/index_io.h"
#include "core/query_engine.h"
#include "esd_version.h"
#include "fault/failpoint.h"
#include "obs/health.h"
#include "gen/datasets.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "live/live_index.h"
#include "live/wal.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/request_context.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/metrics.h"
#include "serve/query_service.h"
#include "shard/sharded_engine.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

void Usage() {
  std::fprintf(stderr,
               "esd_server %s\n"
               "usage: esd_server (--file <edge_list> | --dataset <name>)\n"
               "                  [--scale S] [--engine E] [--threads N]\n"
               "                  [--scorer esd|truss|egobw]\n"
               "                  [--clients C] [--requests R]\n"
               "                  [--max-queue Q] [--deadline-us D]\n"
               "                  [--load-index P] [--cache-bytes B]\n"
               "                  [--live-dir DIR] [--refreeze-every N]\n"
               "                  [--shards N]\n"
               "                  [--slowlog N] [--history-interval-ms M]\n"
               "                  [--history-samples S]\n"
               "                  [--listen PORT] [--bind ADDR]\n"
               "                  [--force-poll] [--drain-timeout-ms D]\n",
               esd::kVersionString);
}

/// printf into a growing string — the command executor produces its output
/// as a string so one implementation serves both stdin and socket clients.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void AppendF(std::string* out, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  char stack_buf[512];
  const int n = std::vsnprintf(stack_buf, sizeof(stack_buf), fmt, ap);
  va_end(ap);
  if (n < 0) {
    va_end(ap2);
    return;
  }
  if (n < static_cast<int>(sizeof(stack_buf))) {
    out->append(stack_buf, static_cast<size_t>(n));
  } else {
    std::string big(static_cast<size_t>(n) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, ap2);
    big.resize(static_cast<size_t>(n));
    out->append(big);
  }
  va_end(ap2);
}

/// The active listener, for the SIGINT/SIGTERM handler. RequestShutdown is
/// one atomic store plus one pipe write — async-signal-safe — and the main
/// thread does the actual teardown after Join() returns.
std::atomic<esd::net::NetServer*> g_net_server{nullptr};

void HandleShutdownSignal(int) {
  esd::net::NetServer* server = g_net_server.load();
  if (server != nullptr) server->RequestShutdown();
}

const char* StatusName(esd::serve::ResponseStatus s) {
  switch (s) {
    case esd::serve::ResponseStatus::kOk:
      return "ok";
    case esd::serve::ResponseStatus::kRejectedQueueFull:
      return "rejected";
    case esd::serve::ResponseStatus::kDeadlineMissed:
      return "deadline-missed";
    case esd::serve::ResponseStatus::kShutdown:
      return "shutdown";
    case esd::serve::ResponseStatus::kShardsUnavailable:
      return "shards-unavailable";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esd;

  std::string file, dataset, load_index, live_dir, engine_name = "frozen";
  std::string scorer_name = "esd";
  double scale = 1.0;
  unsigned threads = 0;  // 0 = ThreadPool::DefaultThreadCount()
  unsigned clients = 4;
  uint64_t requests = 5000;
  size_t max_queue = 1024;
  uint64_t deadline_us = 0;
  uint64_t refreeze_every = 256;
  uint32_t shards = 1;  // >= 2 = sharded serving (src/shard/)
  size_t cache_bytes = 0;  // 0 = result cache off
  size_t slowlog_capacity = 32;
  uint64_t history_interval_ms = 1000;  // 0 = no background sampler
  size_t history_samples = 120;
  bool listen = false;   // --listen PORT: start the TCP front end
  int listen_port = 0;   // 0 = kernel-assigned ephemeral port
  std::string bind_address = "127.0.0.1";
  bool force_poll = false;
  uint64_t drain_timeout_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--file") {
      file = next();
    } else if (arg == "--dataset") {
      dataset = next();
    } else if (arg == "--scale") {
      scale = std::atof(next());
    } else if (arg == "--engine") {
      engine_name = next();
    } else if (arg == "--scorer") {
      scorer_name = next();
    } else if (arg == "--threads") {
      threads = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--clients") {
      clients = static_cast<unsigned>(std::atoi(next()));
    } else if (arg == "--requests") {
      requests = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--max-queue") {
      max_queue = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--deadline-us") {
      deadline_us = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--load-index") {
      load_index = next();
    } else if (arg == "--live-dir") {
      live_dir = next();
    } else if (arg == "--refreeze-every") {
      refreeze_every = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--shards") {
      shards = static_cast<uint32_t>(std::atoi(next()));
    } else if (arg == "--cache-bytes") {
      cache_bytes = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--slowlog") {
      slowlog_capacity = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--history-interval-ms") {
      history_interval_ms = static_cast<uint64_t>(std::atoll(next()));
    } else if (arg == "--history-samples") {
      history_samples = static_cast<size_t>(std::atoll(next()));
    } else if (arg == "--listen") {
      listen = true;
      listen_port = std::atoi(next());
    } else if (arg == "--bind") {
      bind_address = next();
    } else if (arg == "--force-poll") {
      force_poll = true;
    } else if (arg == "--drain-timeout-ms") {
      drain_timeout_ms = static_cast<uint64_t>(std::atoll(next()));
    } else {
      Usage();
      return 2;
    }
  }
  if (file.empty() == dataset.empty()) {  // exactly one source required
    Usage();
    return 2;
  }
  if (clients == 0) clients = 1;
  const core::DiversityScorer* scorer = core::FindScorer(scorer_name);
  if (scorer == nullptr) {
    std::fprintf(stderr, "error: unknown scorer '%s' (expected one of:",
                 scorer_name.c_str());
    for (const std::string& name : core::ScorerNames()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, ")\n");
    return 2;
  }

  // Surface injected faults up front: an operator (or the chaos smoke
  // script) should be able to see from the log which points are armed.
  {
    const std::vector<std::string> active =
        fault::FailPointRegistry::Global().ActiveNames();
    if (!active.empty()) {
      std::string joined;
      for (const std::string& name : active) {
        if (!joined.empty()) joined += ", ";
        joined += name;
      }
      std::printf("fail points active: %s%s\n", joined.c_str(),
                  fault::kFailPointsCompiledIn
                      ? ""
                      : " (sites compiled out: ESD_FAULT=OFF)");
    }
  }

  graph::Graph g;
  if (!file.empty()) {
    std::string error;
    if (!graph::LoadEdgeList(file, &g, &error)) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
  } else {
    g = gen::LoadStandardDataset(dataset, scale).graph;
  }
  std::printf("graph: n=%u m=%u\n", g.NumVertices(), g.NumEdges());

  util::Timer timer;
  std::unique_ptr<core::EsdQueryEngine> engine;
  std::unique_ptr<live::LiveEsdIndex> live;
  std::unique_ptr<shard::ShardedQueryEngine> sharded;
  if (shards >= 2) {
    if (!load_index.empty()) {
      std::fprintf(stderr,
                   "error: --shards and --load-index are incompatible "
                   "(shards build their masked images from the graph)\n");
      return 2;
    }
    shard::ShardedOptions sopts;
    sopts.num_shards = shards;
    sopts.scorer = scorer->Kind();
    sopts.refreeze_every = refreeze_every;
    sopts.registry = &obs::MetricRegistry::Global();
    if (!live_dir.empty()) {
      sopts.dir = live_dir;
      std::string error;
      sharded = shard::ShardedQueryEngine::Open(g, sopts, &error);
      if (sharded == nullptr) {
        std::fprintf(stderr, "error: %s\n", error.c_str());
        return 1;
      }
      engine_name = "sharded-live";
    } else {
      sharded = shard::ShardedQueryEngine::BuildStatic(g, sopts);
      engine_name = "sharded-frozen";
    }
    const serve::ShardCounts counts = sharded->Counts();
    std::printf("sharded engine up: %.1f ms (%u shards: %u ok, %u degraded, "
                "%u down)\n",
                timer.ElapsedMillis(), sharded->num_shards(), counts.ok,
                counts.degraded, counts.down);
    for (const shard::ShardStatus& st : sharded->Status()) {
      if (st.state != "ok") {
        std::printf("  shard %u: %s%s%s\n", st.id, st.state.c_str(),
                    st.down_reason.empty() ? "" : " - ",
                    st.down_reason.c_str());
      }
    }
  } else if (!live_dir.empty()) {
    std::filesystem::create_directories(live_dir);
    live::LiveOptions live_options;
    live_options.wal_path =
        (std::filesystem::path(live_dir) / "wal.bin").string();
    live_options.snapshot_path =
        (std::filesystem::path(live_dir) / "snapshot.bin").string();
    live_options.refreeze_every = refreeze_every;
    live_options.scorer = scorer->Kind();
    live_options.registry = &obs::MetricRegistry::Global();
    std::string error;
    live = live::LiveEsdIndex::Open(g, live_options, &error);
    if (live == nullptr) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    engine_name = "live";
    const live::RecoveredState& rec = live->recovery();
    std::printf(
        "live index up: %.1f ms (snapshot %s, replayed %llu wal records, "
        "wal tail %s, applied_seq %llu)\n",
        timer.ElapsedMillis(), rec.snapshot_loaded ? "loaded" : "absent",
        static_cast<unsigned long long>(rec.replay_applied),
        live::WalTailStatusName(rec.wal.tail),
        static_cast<unsigned long long>(live->Stats().applied_seq));
  } else if (!load_index.empty()) {
    core::FrozenEsdIndex index;
    const core::IndexIoResult res =
        core::LoadFrozenIndex(load_index, &index, scorer->Kind());
    if (!res) {
      std::fprintf(stderr, "error: %s\n", res.message.c_str());
      return 1;
    }
    engine = std::make_unique<core::FrozenEsdIndex>(std::move(index));
    engine_name = "frozen";
    std::printf("frozen engine loaded from %s: %.1f ms\n",
                load_index.c_str(), timer.ElapsedMillis());
  } else {
    std::string error;
    engine = core::BuildQueryEngine(g, engine_name, *scorer, &error);
    if (engine == nullptr) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::printf("%s engine build (%s scorer): %.1f ms\n", engine_name.c_str(),
                std::string(scorer->Name()).c_str(), timer.ElapsedMillis());
  }

  serve::EsdQueryService::Options opts;
  opts.num_threads = threads;
  opts.max_queue = max_queue;
  opts.cache_bytes = cache_bytes;
  opts.slowlog_capacity = slowlog_capacity;
  // Host the service metrics on the process-wide registry so METRICS can
  // dump them alongside the engine counters and phase gauges.
  opts.registry = &obs::MetricRegistry::Global();
  // Fold the live index's fault posture (read-only / breaker-open) into
  // the service's Health() so STATS and METRICS report one combined state.
  if (live != nullptr) {
    live::LiveEsdIndex* live_raw = live.get();
    opts.health_source = [live_raw] { return live_raw->Health(); };
  }
  // Live mode serves through the epoch-aware engine provider: each batch
  // pins the current epoch (engine + epoch id), so INSERT/DELETE/CHECKPOINT
  // swap engines under a running service without a restart, and the result
  // cache keys its generations on the pinned epoch.
  std::unique_ptr<serve::EsdQueryService> service_ptr;
  if (sharded != nullptr) {
    // Sharded mode: the service scatters each batch through the backend;
    // the backend's monotone generation plays the epoch's role for the
    // cache, and its fleet health is folded into service.Health().
    service_ptr = std::make_unique<serve::EsdQueryService>(*sharded, opts);
  } else if (live != nullptr) {
    live::LiveEsdIndex* live_raw = live.get();
    serve::EsdQueryService::EpochEngineProvider provider =
        [live_raw]() -> serve::EsdQueryService::PinnedEngine {
      std::shared_ptr<const live::EpochSnapshot> snap =
          live_raw->CurrentSnapshot();
      return {std::shared_ptr<const core::EsdQueryEngine>(snap, &snap->index),
              snap->epoch};
    };
    service_ptr =
        std::make_unique<serve::EsdQueryService>(std::move(provider), opts);
    // Rotate the cache generation the moment an epoch publishes rather
    // than lazily on the first post-swap lookup (cleared again before the
    // service dies — the refreeze pool outlives it).
    service_ptr->NotifyEpoch(live->CurrentSnapshot()->epoch);
    serve::EsdQueryService* svc = service_ptr.get();
    live->SetEpochListener(
        [svc](uint64_t epoch, uint64_t /*seq*/) { svc->NotifyEpoch(epoch); });
  } else {
    service_ptr = std::make_unique<serve::EsdQueryService>(*engine, opts);
  }
  serve::EsdQueryService& service = *service_ptr;
  std::printf("service up: %u worker threads, queue bound %zu%s\n\n",
              service.num_threads(), max_queue,
              service.cache() != nullptr ? ", result cache on" : "");

  // Metrics time-series ring: periodic registry snapshots with delta/rate
  // computation, served by the HISTORY command. The pre-sample hook pushes
  // the pull-style gauges (live lag, combined health) so every interval is
  // coherent. Stopped before the service/live teardown below.
  obs::MetricHistory::Options hopts;
  hopts.capacity = std::max<size_t>(2, history_samples);
  hopts.interval = std::chrono::milliseconds(
      history_interval_ms == 0 ? 1000 : history_interval_ms);
  {
    live::LiveEsdIndex* live_raw = live.get();
    shard::ShardedQueryEngine* sharded_raw = sharded.get();
    serve::EsdQueryService* svc = service_ptr.get();
    hopts.pre_sample = [live_raw, sharded_raw, svc] {
      if (live_raw != nullptr) live_raw->ExportMetrics();
      if (sharded_raw != nullptr) sharded_raw->ExportMetrics();
      obs::ExportHealth(obs::MetricRegistry::Global(), svc->Health());
    };
  }
  obs::MetricHistory history(obs::MetricRegistry::Global(), hopts);
  history.SampleNow();  // interval 0 starts at server-up, not first scrape
  if (history_interval_ms > 0) history.Start();

  // Burst: `clients` threads each fire their share of the requests, mixing
  // taus and ks, then report one sample response apiece.
  const uint64_t per_client = (requests + clients - 1) / clients;
  std::vector<std::thread> client_threads;
  client_threads.reserve(clients);
  std::vector<serve::QueryResponse> samples(clients);
  util::Timer wall;
  for (unsigned c = 0; c < clients; ++c) {
    client_threads.emplace_back([&, c] {
      util::Rng rng(0xC0FFEE + c);
      serve::QueryResponse last;
      for (uint64_t r = 0; r < per_client; ++r) {
        serve::QueryRequest rq;
        rq.k = 1 + static_cast<uint32_t>(rng.NextBounded(50));
        rq.tau = 1 + static_cast<uint32_t>(rng.NextBounded(8));
        rq.deadline_us = deadline_us;
        last = service.Query(rq);
      }
      samples[c] = last;
    });
  }
  for (std::thread& t : client_threads) t.join();
  const double wall_s = wall.ElapsedSeconds();

  const uint64_t sent = per_client * clients;
  std::printf("%llu requests in %.1f ms -> %.0f qps\n",
              static_cast<unsigned long long>(sent), wall_s * 1e3,
              static_cast<double>(sent) / wall_s);
  for (unsigned c = 0; c < clients; ++c) {
    const serve::QueryResponse& s = samples[c];
    std::printf("client %u last response: %s, %zu edges, queue %.1f us, "
                "exec %.1f us\n",
                c, StatusName(s.status), s.result.size(), s.queue_us,
                s.exec_us);
  }

  const serve::MetricsSnapshot snap = service.metrics().Snap();
  std::printf("\nservice metrics:\n");
  std::printf("  accepted/completed:   %llu / %llu\n",
              static_cast<unsigned long long>(snap.accepted),
              static_cast<unsigned long long>(snap.completed));
  std::printf("  rejected (queue full): %llu\n",
              static_cast<unsigned long long>(snap.rejected));
  std::printf("  deadline missed:      %llu\n",
              static_cast<unsigned long long>(snap.deadline_missed));
  std::printf("  batches (saved slab searches): %llu (%llu)\n",
              static_cast<unsigned long long>(snap.batches),
              static_cast<unsigned long long>(snap.slab_searches_saved));
  std::printf("  latency p50/p95/p99:  %.1f / %.1f / %.1f us\n",
              snap.total.p50_us, snap.total.p95_us, snap.total.p99_us);
  std::printf("  queue-wait p95:       %.1f us\n", snap.queue_wait.p95_us);
  std::printf("  execute p95:          %.1f us\n", snap.execute.p95_us);
  std::printf("{\"bench\":\"esd_server\",\"engine\":\"%s\",\"scorer\":\"%s\","
              "\"dataset\":\"%s\","
              "\"op\":\"burst\",\"wall_ms\":%.6f,\"bytes\":%llu,%s}\n",
              engine_name.c_str(), std::string(scorer->Name()).c_str(),
              (dataset.empty() ? file : dataset).c_str(), wall_s * 1e3,
              static_cast<unsigned long long>(
                  sharded != nullptr ? sharded->MemoryBytes()
                  : live != nullptr ? live->CurrentEngine()->MemoryBytes()
                                    : engine->MemoryBytes()),
              serve::MetricsJsonFields(snap).c_str());

  // ---- Command executor -------------------------------------------------
  // One implementation serves both front ends: the stdin loop below and the
  // socket text mode (NetServer's CommandFn). Output goes into a string so
  // the caller decides where it lands (stdout or a connection's outbox).
  // Commands are rare and cheap; one mutex serializes the two front ends.
  std::mutex command_mu;

  // Prometheus exposition for the HTTP GET /metrics scrape path,
  // "# EOF"-terminated like the METRICS command so both pass
  // scripts/metrics_lint.sh unchanged.
  auto metrics_text = [&]() -> std::string {
    std::lock_guard<std::mutex> lock(command_mu);
    obs::MetricRegistry& registry = obs::MetricRegistry::Global();
    if (sharded != nullptr) {
      sharded->ExportMetrics();  // per-shard live metrics + fleet gauges
    } else if (live != nullptr) {
      live->ExportMetrics();
      core::ExportEngineCounters(*live->CurrentEngine(), &registry);
    } else {
      core::ExportEngineCounters(*engine, &registry);
    }
    // The combined (service + live) health beats the live-only view
    // ExportMetrics just wrote.
    obs::ExportHealth(registry, service.Health());
    return registry.PrometheusText() + "# EOF\n";
  };

  // Renders one query response exactly as the stdin loop always printed it,
  // so text-mode socket clients (smoke scripts over nc) see identical bytes.
  auto format_query_text = [](const serve::QueryResponse& resp) {
    std::string out;
    AppendF(&out, "OK %s %zu edges, queue %.1f us, exec %.1f us\n",
            StatusName(resp.status), resp.result.size(), resp.queue_us,
            resp.exec_us);
    // The request-scoped attribution: where this specific query's time
    // went, plus its id (grep the rid in TRACE output), cache outcome,
    // and serving epoch.
    AppendF(&out, "  rid=%llu epoch=%llu cache=%s",
            static_cast<unsigned long long>(resp.ctx.request_id),
            static_cast<unsigned long long>(resp.ctx.epoch),
            obs::CacheOutcomeName(resp.ctx.cache));
    if (resp.shards_ok + resp.shards_degraded + resp.shards_down > 0) {
      AppendF(&out, " shards=%u/%u/%u", resp.shards_ok, resp.shards_degraded,
              resp.shards_down);
    }
    AppendF(&out, " stages[us]:");
    for (size_t s = 0; s < obs::kNumStages; ++s) {
      AppendF(&out, " %s=%.1f", obs::StageName(static_cast<obs::Stage>(s)),
              resp.ctx.StageMicros(static_cast<obs::Stage>(s)));
    }
    AppendF(&out, "\n");
    for (size_t i = 0; i < resp.result.size(); ++i) {
      AppendF(&out, "  %zu (%u,%u) %u\n", i + 1, resp.result[i].edge.u,
              resp.result[i].edge.v, resp.result[i].score);
    }
    return out;
  };

  // Returns false to end the session (QUIT/EXIT): the stdin loop breaks,
  // a socket connection closes after the reply flushes.
  auto execute_command = [&](const std::string& line, std::string* out) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) return true;
    if (cmd == "QUIT" || cmd == "EXIT") return false;
    if (cmd == "QUERY") {
      // Stdin path only: the socket front end intercepts QUERY lines and
      // submits them through the async admission path instead.
      serve::QueryRequest rq;
      if (!(in >> rq.k >> rq.tau)) {
        AppendF(out, "ERR usage: QUERY <k> <tau> [STRICT]\n");
        return true;
      }
      std::string strict_token;
      if (in >> strict_token) {
        if (strict_token != "STRICT") {
          AppendF(out, "ERR usage: QUERY <k> <tau> [STRICT]\n");
          return true;
        }
        rq.strict = true;
      }
      rq.deadline_us = deadline_us;
      const serve::QueryResponse resp = service.Query(rq);
      *out += format_query_text(resp);
      return true;
    }
    std::lock_guard<std::mutex> lock(command_mu);
    if (cmd == "INSERT" || cmd == "DELETE") {
      if (live == nullptr && (sharded == nullptr || !sharded->live_mode())) {
        AppendF(out, "ERR updates need --live-dir\n");
        return true;
      }
      live::LiveUpdate update;
      update.kind = cmd == "INSERT" ? live::UpdateKind::kInsert
                                    : live::UpdateKind::kDelete;
      if (!(in >> update.u >> update.v)) {
        AppendF(out, "ERR usage: %s <u> <v>\n", cmd.c_str());
        return true;
      }
      if (sharded != nullptr) {
        // Broadcast write: one typed outcome for the whole fleet, plus
        // the post-apply watermark/health tallies.
        const live::ApplyResult result =
            sharded->ApplyBatchTyped({&update, 1});
        const serve::ShardCounts counts = sharded->Counts();
        if (result.status == live::ApplyStatus::kOk) {
          AppendF(out, "OK shards_ok=%u shards_degraded=%u shards_down=%u%s%s\n",
                  counts.ok, counts.degraded, counts.down,
                  result.message.empty() ? "" : " - ",
                  result.message.c_str());
        } else {
          AppendF(out, "ERR %s %s\n", live::ApplyStatusName(result.status),
                  result.message.c_str());
        }
        return true;
      }
      const live::ApplyResult result = live->ApplyTyped(update);
      if (result.status == live::ApplyStatus::kOk && result.processed == 1) {
        const live::LiveStats s = live->Stats();
        AppendF(out, "OK seq=%llu wal_bytes=%llu epoch=%llu\n",
                static_cast<unsigned long long>(s.applied_seq),
                static_cast<unsigned long long>(s.wal_bytes),
                static_cast<unsigned long long>(s.snapshot_epoch));
      } else {
        // Typed rejection: scripts match on the status token (wal-error,
        // degraded, bounds) without parsing the prose.
        AppendF(out, "ERR %s %s\n", live::ApplyStatusName(result.status),
                result.message.c_str());
      }
    } else if (cmd == "CHECKPOINT") {
      if (sharded != nullptr && sharded->live_mode()) {
        std::string error;
        if (sharded->Checkpoint(&error)) {
          AppendF(out, "OK all shards checkpointed\n");
        } else {
          AppendF(out, "ERR %s\n", error.c_str());
        }
        return true;
      }
      if (live == nullptr) {
        AppendF(out, "ERR checkpoint needs --live-dir\n");
        return true;
      }
      std::string error;
      if (live->Checkpoint(&error)) {
        const live::LiveStats s = live->Stats();
        AppendF(out, "OK seq=%llu wal_bytes=%llu epoch=%llu\n",
                static_cast<unsigned long long>(s.applied_seq),
                static_cast<unsigned long long>(s.wal_bytes),
                static_cast<unsigned long long>(s.snapshot_epoch));
      } else {
        AppendF(out, "ERR %s\n", error.c_str());
      }
    } else if (cmd == "REFREEZE") {
      // Synchronous epoch publish: with shards, the quiesce step chaos
      // tests use before comparing against an unsharded reference.
      if (sharded != nullptr) {
        sharded->CatchUp();  // drive heal probes + journal replay first
        AppendF(out, sharded->RefreezeAll() ? "OK refrozen\n"
                                            : "ERR refreeze failed on >= 1 "
                                              "shard\n");
      } else if (live != nullptr) {
        AppendF(out, live->RefreezeNow() ? "OK refrozen\n"
                                         : "ERR refreeze failed\n");
      } else {
        AppendF(out, "ERR refreeze needs --live-dir or --shards\n");
      }
    } else if (cmd == "SHARDS") {
      if (sharded == nullptr) {
        AppendF(out, "ERR not running sharded (--shards N)\n");
        return true;
      }
      const serve::ShardCounts counts = sharded->Counts();
      AppendF(out, "OK shards=%u ok=%u degraded=%u down=%u generation=%llu\n",
              sharded->num_shards(), counts.ok, counts.degraded, counts.down,
              static_cast<unsigned long long>(sharded->Generation()));
      for (const shard::ShardStatus& st : sharded->Status()) {
        AppendF(out,
                "shard %u state=%s health=%s epoch=%llu wal_seq=%llu "
                "journal_applied=%llu journal_lag=%llu queries=%llu "
                "drained=%llu stall_trips=%llu replayed=%llu%s%s\n",
                st.id, st.state.c_str(), obs::HealthStateName(st.health),
                static_cast<unsigned long long>(st.epoch),
                static_cast<unsigned long long>(st.wal_applied_seq),
                static_cast<unsigned long long>(st.journal_applied),
                static_cast<unsigned long long>(st.journal_lag),
                static_cast<unsigned long long>(st.queries),
                static_cast<unsigned long long>(st.drained),
                static_cast<unsigned long long>(st.stall_trips),
                static_cast<unsigned long long>(st.replayed),
                st.down_reason.empty() ? "" : " reason=",
                st.down_reason.c_str());
      }
    } else if (cmd == "STATS") {
      const serve::MetricsSnapshot s = service.metrics().Snap();
      AppendF(out,
              "OK accepted=%llu completed=%llu rejected=%llu "
              "deadline_missed=%llu batches=%llu queue_depth=%llu "
              "p50_us=%.1f p95_us=%.1f p99_us=%.1f",
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.rejected),
              static_cast<unsigned long long>(s.deadline_missed),
              static_cast<unsigned long long>(s.batches),
              static_cast<unsigned long long>(s.queue_depth),
              s.total.p50_us, s.total.p95_us, s.total.p99_us);
      if (sharded != nullptr) {
        const serve::ShardCounts counts = sharded->Counts();
        AppendF(out,
                " shards=%u shards_ok=%u shards_degraded=%u shards_down=%u "
                "shard_generation=%llu",
                sharded->num_shards(), counts.ok, counts.degraded,
                counts.down,
                static_cast<unsigned long long>(sharded->Generation()));
      }
      if (live != nullptr) {
        const live::LiveStats ls = live->Stats();
        AppendF(out,
                " live_seq=%llu live_epoch=%llu live_lag=%llu "
                "live_age_s=%.3f wal_bytes=%llu checkpoints=%llu "
                "wal_retries=%llu wal_failures=%llu "
                "degraded_rejections=%llu heals=%llu breaker_open=%d",
                static_cast<unsigned long long>(ls.applied_seq),
                static_cast<unsigned long long>(ls.snapshot_epoch),
                static_cast<unsigned long long>(ls.snapshot_lag),
                ls.snapshot_age_s,
                static_cast<unsigned long long>(ls.wal_bytes),
                static_cast<unsigned long long>(ls.checkpoints),
                static_cast<unsigned long long>(ls.wal_retries),
                static_cast<unsigned long long>(ls.wal_append_failures),
                static_cast<unsigned long long>(ls.degraded_rejections),
                static_cast<unsigned long long>(ls.heals),
                ls.breaker_open ? 1 : 0);
      }
      if (service.cache() != nullptr) {
        const serve::ResultCache::Stats cs = service.cache()->Snap();
        AppendF(out,
                " cache_hits=%llu cache_misses=%llu cache_hit_rate=%.3f "
                "cache_entries=%zu cache_bytes=%llu cache_epoch=%llu "
                "cache_evictions=%llu",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses), cs.hit_rate,
                cs.entries, static_cast<unsigned long long>(cs.bytes),
                static_cast<unsigned long long>(cs.epoch),
                static_cast<unsigned long long>(cs.evictions));
      }
      if (g_net_server.load() != nullptr) {
        const net::NetServer::Stats ns = g_net_server.load()->SnapStats();
        AppendF(out,
                " net_accepts=%llu net_open=%llu net_inflight=%llu "
                "net_parse_errors=%llu net_backpressure_closes=%llu",
                static_cast<unsigned long long>(ns.accepts),
                static_cast<unsigned long long>(ns.open_connections),
                static_cast<unsigned long long>(ns.inflight),
                static_cast<unsigned long long>(ns.parse_errors),
                static_cast<unsigned long long>(ns.backpressure_closes));
      }
      AppendF(out, " scorer=%s", std::string(scorer->Name()).c_str());
      AppendF(out, " health=%s", obs::HealthStateName(service.Health()));
      AppendF(out, "\n");
    } else if (cmd == "METRICS") {
      obs::MetricRegistry& registry = obs::MetricRegistry::Global();
      if (sharded != nullptr) {
        sharded->ExportMetrics();
      } else if (live != nullptr) {
        live->ExportMetrics();
        core::ExportEngineCounters(*live->CurrentEngine(), &registry);
      } else {
        core::ExportEngineCounters(*engine, &registry);
      }
      // The combined (service + live) health beats the live-only view
      // ExportMetrics just wrote.
      obs::ExportHealth(registry, service.Health());
      *out += registry.PrometheusText();
      AppendF(out, "# EOF\n");
    } else if (cmd == "SLOWLOG") {
      size_t n = 0;  // 0 = everything retained
      in >> n;
      const serve::SlowQueryLog& slowlog = service.slow_log();
      const std::vector<std::string> lines = slowlog.JsonLines(n);
      AppendF(out,
              "OK slowlog %zu entries (capacity %zu, window %llds, "
              "%llu requests considered)\n",
              lines.size(), slowlog.capacity(),
              static_cast<long long>(slowlog.window().count()),
              static_cast<unsigned long long>(slowlog.recorded()));
      for (const std::string& entry : lines) {
        AppendF(out, "%s\n", entry.c_str());
      }
    } else if (cmd == "HISTORY") {
      std::string what;
      in >> what;
      // A scrape-time sample makes the command self-contained: even with
      // the background sampler off (--history-interval-ms 0) there are
      // always >= 2 samples to diff.
      history.SampleNow();
      if (what == "PROM") {
        *out += history.RatesPrometheus();
        AppendF(out, "# EOF\n");
      } else {
        const size_t n =
            what.empty() ? 10 : static_cast<size_t>(std::atoll(what.c_str()));
        const std::vector<std::string> lines =
            history.IntervalsJson(n == 0 ? 10 : n);
        AppendF(out,
                "OK history %zu intervals (ring %zu/%zu, interval "
                "%llu ms)\n",
                lines.size(), history.NumSamples(), history.capacity(),
                static_cast<unsigned long long>(history_interval_ms));
        for (const std::string& interval : lines) {
          AppendF(out, "%s\n", interval.c_str());
        }
      }
    } else if (cmd == "FAILPOINT") {
      std::string name, spec;
      in >> name >> spec;
      if (name.empty()) {
        AppendF(out, "ERR usage: FAILPOINT <name> <spec> | FAILPOINT LIST | "
                     "FAILPOINT clearall\n");
        return true;
      }
      if (name == "LIST" || name == "list") {
        // Operator discovery: every compiled-in site with its live
        // hit/fire counters, then any armed per-instance names (the
        // ".shard<i>"-suffixed points) the curated table lists only once.
        fault::FailPointRegistry& fpr = fault::FailPointRegistry::Global();
        const std::vector<fault::FailPointSite> sites =
            fault::BuiltinFailPointSites();
        std::vector<std::string> active = fpr.ActiveNames();
        AppendF(out, "OK %zu sites, %zu armed%s\n", sites.size(),
                active.size(),
                fault::kFailPointsCompiledIn
                    ? ""
                    : " (sites compiled out: ESD_FAULT=OFF)");
        for (const fault::FailPointSite& site : sites) {
          const std::string site_name(site.name);
          const bool armed =
              std::find(active.begin(), active.end(), site_name) !=
              active.end();
          AppendF(out, "%s %s hits=%llu fires=%llu - %.*s\n",
                  armed ? "armed " : "site  ", site_name.c_str(),
                  static_cast<unsigned long long>(fpr.HitCount(site_name)),
                  static_cast<unsigned long long>(fpr.FireCount(site_name)),
                  static_cast<int>(site.description.size()),
                  site.description.data());
        }
        // Armed names outside the curated table: suffixed instances and
        // test-only points. These carry real hit counts too.
        for (const std::string& armed_name : active) {
          const bool curated =
              std::any_of(sites.begin(), sites.end(),
                          [&](const fault::FailPointSite& site) {
                            return site.name == armed_name;
                          });
          if (curated) continue;
          AppendF(out, "armed %s hits=%llu fires=%llu - (instance)\n",
                  armed_name.c_str(),
                  static_cast<unsigned long long>(fpr.HitCount(armed_name)),
                  static_cast<unsigned long long>(fpr.FireCount(armed_name)));
        }
        return true;
      }
      if (name == "clearall") {
        fault::FailPointRegistry::Global().ClearAll();
        AppendF(out, "OK fail points cleared\n");
        return true;
      }
      if (spec.empty()) {
        AppendF(out, "ERR usage: FAILPOINT <name> <spec>\n");
        return true;
      }
      std::string error;
      if (!fault::FailPointRegistry::Global().Set(name, spec, &error)) {
        AppendF(out, "ERR %s\n", error.c_str());
        return true;
      }
      AppendF(out, "OK %s=%s%s\n", name.c_str(), spec.c_str(),
              fault::kFailPointsCompiledIn
                  ? ""
                  : " (sites compiled out: ESD_FAULT=OFF, no effect)");
    } else if (cmd == "TRACE") {
      std::string path;
      if (!(in >> path)) {
        AppendF(out, "ERR usage: TRACE <path>\n");
        return true;
      }
      std::string error;
      if (obs::Tracer::Global().WriteChromeTrace(path, &error)) {
        AppendF(out, "OK trace written to %s\n", path.c_str());
      } else {
        AppendF(out, "ERR %s\n", error.c_str());
      }
    } else {
      AppendF(out, "ERR unknown command (QUERY/INSERT/DELETE/CHECKPOINT/"
                   "REFREEZE/SHARDS/STATS/METRICS/SLOWLOG/HISTORY/FAILPOINT/"
                   "TRACE/QUIT)\n");
    }
    return true;
  };

  // ---- Network front end (--listen) --------------------------------------
  std::unique_ptr<net::NetServer> net_server;
  if (listen) {
    net::NetServer::Options nopts;
    nopts.bind_address = bind_address;
    nopts.port = static_cast<uint16_t>(listen_port);
    nopts.force_poll = force_poll;
    nopts.drain_timeout = std::chrono::milliseconds(drain_timeout_ms);
    nopts.registry = &obs::MetricRegistry::Global();
    net::NetServer::Handlers handlers;
    handlers.submit = [&service, deadline_us](
                          const serve::QueryRequest& rq,
                          std::function<void(serve::QueryResponse)> done) {
      serve::QueryRequest r = rq;
      // Text-mode queries carry no deadline of their own: the server's
      // --deadline-us default applies, same as the stdin loop.
      if (r.deadline_us == 0) r.deadline_us = deadline_us;
      service.SubmitAsync(r, std::move(done));
    };
    handlers.command = execute_command;
    handlers.format_query = format_query_text;
    handlers.metrics_text = metrics_text;
    net_server =
        std::make_unique<net::NetServer>(std::move(handlers), nopts);
    std::string error;
    if (!net_server->Start(&error)) {
      std::fprintf(stderr, "error: listen failed: %s\n", error.c_str());
      return 1;
    }
    g_net_server.store(net_server.get());
    // SIGINT/SIGTERM trigger the graceful drain (stop accepting, serve
    // in-flight queries, flush outboxes, then exit).
    struct sigaction sa {};
    sa.sa_handler = HandleShutdownSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    // Readiness line: smoke scripts parse the port off it.
    std::printf("listening on %s:%u (%s backend)\n", bind_address.c_str(),
                net_server->port(), net_server->backend_name());
    std::fflush(stdout);
  }

  // ---- Stdin command loop -------------------------------------------------
  // With a listener active, stdin EOF no longer tears the process down (an
  // operator backgrounding the server closes stdin immediately); only an
  // explicit stdin QUIT or a shutdown signal does.
  bool stdin_quit = false;
  std::string line;
  while (std::getline(std::cin, line)) {
    std::string out;
    const bool keep_going = execute_command(line, &out);
    std::fputs(out.c_str(), stdout);
    std::fflush(stdout);
    if (!keep_going) {
      stdin_quit = true;
      break;
    }
  }

  if (net_server != nullptr) {
    if (stdin_quit) {
      // Stdin QUIT shuts the whole server down, gracefully.
      net_server->RequestShutdown();
    }
    // Serve until the drain (signal or QUIT) completes.
    net_server->Join();
    g_net_server.store(nullptr);
    // Shutdown waits for the last in-flight completion, so the stats
    // below are final (inflight provably zero after a clean drain).
    net_server->Shutdown();
    const net::NetServer::Stats ns = net_server->SnapStats();
    // The drain line is the smoke tests' proof of graceful shutdown: every
    // accepted connection was closed and nothing was left in flight.
    std::printf("net: drained (accepts=%llu closed=%llu inflight=%llu "
                "parse_errors=%llu backpressure_closes=%llu)\n",
                static_cast<unsigned long long>(ns.accepts),
                static_cast<unsigned long long>(ns.closed),
                static_cast<unsigned long long>(ns.inflight),
                static_cast<unsigned long long>(ns.parse_errors),
                static_cast<unsigned long long>(ns.backpressure_closes));
    std::fflush(stdout);
  }

  // The history sampler references the service and live index through its
  // pre-sample hook: stop it before either can die. The net server is
  // already down, so no socket command can race the teardown below.
  history.Stop();
  // The background refreeze pool outlives the service object below: drop
  // the epoch listener first so no publish fires into a dead service.
  if (live != nullptr) live->SetEpochListener({});
  service.Stop();
  return 0;
}
