// Extension experiment (beyond the paper's tables): the top-k *vertex*
// structural diversity problem of Huang et al. [2] / Chang et al. [4],
// solved with this library's machinery — dequeue-twice online search vs a
// VSD index with the same H(c) design as the ESDIndex. Demonstrates that
// the paper's indexing idea generalizes from edges to vertices, with the
// same orders-of-magnitude query gap.

#include <cstdio>

#include "baselines/vertex_diversity.h"
#include "baselines/vertex_diversity_index.h"
#include "bench/bench_common.h"
#include "util/timer.h"

int main() {
  using namespace esd;

  const uint32_t k = 100, tau = 2;
  std::printf("top-%u vertex structural diversity (tau=%u)\n\n", k, tau);
  std::printf("%-15s %14s %16s %16s %12s\n", "dataset", "build (ms)",
              "online (ms)", "index query(ms)", "speedup");
  for (const gen::Dataset& d : bench::LoadAll()) {
    util::Timer t;
    baselines::VsdIndex index(d.graph);
    double build = t.ElapsedMillis();
    double online = bench::TimeOnce([&] {
      baselines::OnlineVertexTopK(d.graph, k, tau);
    });
    double query = bench::TimeMean([&] { index.Query(k, tau); });
    // Agreement check (scores only; ties arbitrary).
    auto a = baselines::OnlineVertexTopK(d.graph, k, tau);
    auto b = index.Query(k, tau);
    bool agree = a.size() == b.size();
    for (size_t i = 0; agree && i < a.size(); ++i) {
      agree = a[i].score == b[i].score;
    }
    std::printf("%-15s %14.1f %16.2f %16.4f %11.0fx %s\n", d.name.c_str(),
                build, online * 1e3, query * 1e3, online / query,
                agree ? "" : "  [DISAGREE]");
  }
  return 0;
}
