// Ablation: four index-construction strategies.
//   ESDIndex       — Algorithm 2 as published (plain ego BFS: every member's
//                    full adjacency is scanned);
//   ESDIndex-opt   — our improved BFS baseline (output-sensitive probing,
//                    min{d(w), |N(uv)|} per member) — beyond the paper;
//   ESDIndex+      — Algorithm 3 (4-clique enumeration + disjoint sets);
//   PESDIndex+ t=1 — the parallel builder pinned to one thread (overhead
//                    check).
// The paper compares only the first and third; the -opt row quantifies how
// much of ESDIndex+'s published advantage is reproducible against a
// stronger baseline.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/index_builder.h"
#include "core/parallel_builder.h"

int main() {
  using namespace esd;

  std::printf("%-15s %12s %14s %12s %14s\n", "dataset", "Alg2 (ms)",
              "Alg2-opt (ms)", "Alg3 (ms)", "par t=1 (ms)");
  for (const gen::Dataset& d : bench::LoadAll()) {
    double basic = bench::TimeOnce([&] { core::BuildIndexBasic(d.graph); });
    double fast =
        bench::TimeOnce([&] { core::BuildIndexBasicFast(d.graph); });
    double clique =
        bench::TimeOnce([&] { core::BuildIndexClique(d.graph); });
    double par1 =
        bench::TimeOnce([&] { core::BuildIndexParallel(d.graph, 1); });
    std::printf("%-15s %12.1f %14.1f %12.1f %14.1f\n", d.name.c_str(),
                basic * 1e3, fast * 1e3, clique * 1e3, par1 * 1e3);
  }
  std::printf(
      "\nReading: Alg3 vs Alg2 reproduces the paper's Exp-2 ordering; the\n"
      "opt column shows a subset-probing BFS narrows (and at this scale can\n"
      "close) the gap — a finding about baselines, not about Alg3.\n");
  return 0;
}
