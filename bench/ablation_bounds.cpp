// Ablation: pruning power of the two upper bounds in the dequeue-twice
// framework (Section III). Reports how many exact BFS score computations
// each bound admits (of m possible), and how much time the bound
// computation itself costs — the trade-off the paper discusses: the
// common-neighbor bound is tighter but more expensive to evaluate.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/online_topk.h"

int main() {
  using namespace esd;
  using core::OnlineStats;
  using core::OnlineTopK;
  using core::UpperBoundRule;

  const uint32_t k = 100;
  std::printf("k=%u; exact = exact score computations (lower = better "
              "pruning)\n\n",
              k);
  std::printf("%-15s %4s %12s | %-10s %12s | %-10s %12s %8s\n", "dataset",
              "tau", "m", "MD exact", "bound (ms)", "CN exact", "bound (ms)",
              "ratio");
  for (const gen::Dataset& d : bench::LoadAll()) {
    for (uint32_t tau : {1u, 3u, 5u}) {
      OnlineStats md, cn;
      OnlineTopK(d.graph, k, tau, UpperBoundRule::kMinDegree, &md);
      OnlineTopK(d.graph, k, tau, UpperBoundRule::kCommonNeighbor, &cn);
      std::printf(
          "%-15s %4u %12u | %-10llu %12.2f | %-10llu %12.2f %7.1fx\n",
          d.name.c_str(), tau, d.graph.NumEdges(),
          static_cast<unsigned long long>(md.exact_computations),
          md.bound_seconds * 1e3,
          static_cast<unsigned long long>(cn.exact_computations),
          cn.bound_seconds * 1e3,
          static_cast<double>(md.exact_computations) /
              static_cast<double>(std::max<uint64_t>(1,
                                                     cn.exact_computations)));
    }
  }
  std::printf(
      "\nReading: CN prunes 'ratio' times more candidates at the cost of a\n"
      "more expensive bound pass — on every dataset the trade pays off,\n"
      "matching Exp-1's conclusion.\n");
  return 0;
}
