// Ablation: pruning power of the two upper bounds in the dequeue-twice
// framework (Section III). Reports how many exact BFS score computations
// each bound admits (of m possible), how many edges were certified at
// score 0 without any BFS (upper bound already 0: base < tau), and how
// much time the bound computation itself costs — the trade-off the paper
// discusses: the common-neighbor bound is tighter but more expensive to
// evaluate.
//
// Doubles as a runtime check of the pruning invariants; any violation
// exits non-zero so the bench harness catches regressions.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench/bench_common.h"
#include "core/online_topk.h"

namespace {

uint64_t failures = 0;

void Check(bool ok, const char* what, const std::string& dataset,
           uint32_t tau) {
  if (!ok) {
    std::fprintf(stderr, "INVARIANT VIOLATED [%s tau=%u]: %s\n",
                 dataset.c_str(), tau, what);
    ++failures;
  }
}

}  // namespace

int main() {
  using namespace esd;
  using core::OnlineStats;
  using core::OnlineTopK;
  using core::UpperBoundRule;

  const uint32_t k = 100;
  std::printf("k=%u; exact = exact score computations (lower = better "
              "pruning), skip0 = zero-bound certifications (no BFS)\n\n",
              k);
  std::printf("%-15s %4s %12s | %-10s %8s %10s | %-10s %8s %10s %8s\n",
              "dataset", "tau", "m", "MD exact", "skip0", "bound (ms)",
              "CN exact", "skip0", "bound (ms)", "ratio");
  uint64_t total_skips = 0;
  for (const gen::Dataset& d : bench::LoadAll()) {
    for (uint32_t tau : {1u, 3u, 5u}) {
      OnlineStats md, cn;
      OnlineTopK(d.graph, k, tau, UpperBoundRule::kMinDegree, &md);
      OnlineTopK(d.graph, k, tau, UpperBoundRule::kCommonNeighbor, &cn);
      std::printf(
          "%-15s %4u %12u | %-10llu %8llu %10.2f | %-10llu %8llu %10.2f "
          "%7.1fx\n",
          d.name.c_str(), tau, d.graph.NumEdges(),
          static_cast<unsigned long long>(md.exact_computations),
          static_cast<unsigned long long>(md.zero_bound_skips),
          md.bound_seconds * 1e3,
          static_cast<unsigned long long>(cn.exact_computations),
          static_cast<unsigned long long>(cn.zero_bound_skips),
          cn.bound_seconds * 1e3,
          static_cast<double>(md.exact_computations) /
              static_cast<double>(std::max<uint64_t>(1,
                                                     cn.exact_computations)));
      // Every edge is either BFS-scored, zero-certified, or never dequeued
      // in phase 1 — the first two groups cannot exceed m.
      const uint64_t m = d.graph.NumEdges();
      Check(md.exact_computations + md.zero_bound_skips <= m,
            "MD exact + skip0 exceeds edge count", d.name, tau);
      Check(cn.exact_computations + cn.zero_bound_skips <= m,
            "CN exact + skip0 exceeds edge count", d.name, tau);
      // CN's bound is tighter than MD's (cn <= min(deg)-1 pairs), so any
      // edge MD certifies at 0 is also certified by CN.
      Check(cn.zero_bound_skips >= md.zero_bound_skips,
            "CN certified fewer zero-bound edges than MD", d.name, tau);
      total_skips += md.zero_bound_skips + cn.zero_bound_skips;
    }
  }
  // At tau=5 the standard datasets always contain low-support edges, so
  // the zero-bound fast path must actually fire somewhere in the sweep.
  if (total_skips == 0) {
    std::fprintf(stderr,
                 "INVARIANT VIOLATED: zero-bound pruning never fired\n");
    ++failures;
  }
  std::printf(
      "\nReading: CN prunes 'ratio' times more candidates at the cost of a\n"
      "more expensive bound pass — on every dataset the trade pays off,\n"
      "matching Exp-1's conclusion. skip0 edges (bound already 0) are\n"
      "certified without entering the BFS at all.\n");
  if (failures != 0) {
    std::fprintf(stderr, "%llu invariant violation(s)\n",
                 static_cast<unsigned long long>(failures));
    return 1;
  }
  return 0;
}
