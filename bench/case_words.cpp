// Exp-8 / Fig. 13: word-association case study (tau=2, k=2). Checks that
// the top structural-diversity edges are the planted polysemous pairs and
// that their ego-network components recover the planted senses exactly;
// also reports the CN and BT top pairs for contrast (the paper: CN pairs
// are strongly associated but mono-sense; BT pairs share few neighbors).

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "baselines/betweenness.h"
#include "baselines/common_neighbor.h"
#include "bench/bench_common.h"
#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "gen/word_association.h"
#include "graph/connectivity.h"
#include "util/flat_map.h"

namespace {

using esd::gen::WordAssociationGraph;
using esd::graph::VertexId;

// Components of the pair's ego-network, as sets of words.
std::vector<std::set<std::string>> SenseClusters(
    const WordAssociationGraph& net, VertexId a, VertexId b) {
  std::vector<std::set<std::string>> out;
  for (const auto& members : esd::core::EgoComponents(net.graph, a, b)) {
    std::set<std::string> sense;
    for (VertexId w : members) sense.insert(net.words[w]);
    out.push_back(std::move(sense));
  }
  return out;
}

}  // namespace

int main() {
  using namespace esd;

  gen::WordAssociationParams params;
  gen::WordAssociationGraph net = gen::GenerateWordAssociation(params, 0xD0C);
  std::printf("word association network: n=%u m=%u (USF-style synthetic)\n\n",
              net.graph.NumVertices(), net.graph.NumEdges());

  const uint32_t tau = 2, k = 2;
  core::EsdIndex index = core::BuildIndexClique(net.graph);
  core::TopKResult top = index.Query(k, tau, /*pad_with_zero_edges=*/false);

  std::set<graph::Edge> planted(net.planted_pairs.begin(),
                                net.planted_pairs.end());
  uint32_t hits = 0;
  for (const core::ScoredEdge& se : top) {
    hits += planted.count(se.edge);
    std::printf("top edge: (\"%s\", \"%s\")  score %u%s\n",
                net.words[se.edge.u].c_str(), net.words[se.edge.v].c_str(),
                se.score, planted.count(se.edge) ? "  [planted pair]" : "");
    auto clusters = SenseClusters(net, se.edge.u, se.edge.v);
    for (size_t c = 0; c < clusters.size(); ++c) {
      std::printf("  sense %zu: {", c + 1);
      bool first = true;
      for (const std::string& w : clusters[c]) {
        std::printf("%s%s", first ? "" : ", ", w.c_str());
        first = false;
      }
      std::printf("}\n");
    }
  }
  std::printf("\nESD top-%u planted-pair precision: %u/%u\n\n", k, hits, k);

  // Ground-truth check: do the recovered senses of the best pair match the
  // planted senses exactly?
  if (!top.empty()) {
    const auto& e = top[0].edge;
    auto clusters = SenseClusters(net, e.u, e.v);
    const gen::PolysemousPair* truth = nullptr;
    for (size_t i = 0; i < net.planted_pairs.size(); ++i) {
      if (net.planted_pairs[i] == e) truth = &net.ground_truth[i];
    }
    if (truth != nullptr) {
      std::set<std::set<std::string>> got(clusters.begin(), clusters.end());
      std::set<std::set<std::string>> want;
      for (const auto& sense : truth->senses) {
        want.emplace(sense.begin(), sense.end());
      }
      std::printf("sense recovery for the top pair: %s\n",
                  got == want ? "EXACT (all planted senses recovered)"
                              : "partial");
    }
  }

  // Contrast with CN and BT (paper: strongly-associated but mono-sense /
  // weakly-associated pairs).
  auto cn = baselines::TopKByCommonNeighbors(net.graph, k);
  std::printf("\nCN top pairs:");
  for (const auto& se : cn) {
    std::printf(" (\"%s\",\"%s\") comps=%zu",
                net.words[se.edge.u].c_str(), net.words[se.edge.v].c_str(),
                SenseClusters(net, se.edge.u, se.edge.v).size());
  }
  auto bt = baselines::TopKByBetweenness(net.graph, k, 300);
  std::printf("\nBT top pairs:");
  for (const auto& se : bt.edges) {
    std::printf(" (\"%s\",\"%s\") |N(uv)|=%u", net.words[se.edge.u].c_str(),
                net.words[se.edge.v].c_str(),
                graph::CountCommonNeighbors(net.graph, se.edge.u, se.edge.v));
  }
  std::printf("\n");
  return 0;
}
