#ifndef ESD_BENCH_BENCH_COMMON_H_
#define ESD_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "graph/graph.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace esd::bench {

/// Scale knob for all dataset-driven benches: ESD_BENCH_SCALE=2.0 doubles
/// every synthetic dataset's vertex budget. Default 1.0 (~1/100 of the
/// paper's graphs; sized for a single core).
inline double BenchScale() {
  const char* env = std::getenv("ESD_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 1.0;
}

/// Loads a standard dataset at the bench scale.
inline gen::Dataset Load(const std::string& name) {
  return gen::LoadStandardDataset(name, BenchScale());
}

/// All five Table-I stand-ins at the bench scale.
inline std::vector<gen::Dataset> LoadAll() {
  std::vector<gen::Dataset> out;
  for (const std::string& name : gen::StandardDatasetNames()) {
    out.push_back(Load(name));
  }
  return out;
}

/// Times `fn()` once and returns seconds.
template <typename Fn>
double TimeOnce(Fn&& fn) {
  util::Timer t;
  fn();
  return t.ElapsedSeconds();
}

/// Times `fn()` repeatedly (at least `min_reps`, at least `min_seconds`
/// total) and returns the mean seconds per call. For sub-millisecond
/// operations.
template <typename Fn>
double TimeMean(Fn&& fn, int min_reps = 5, double min_seconds = 0.05) {
  util::Timer t;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (reps < min_reps || t.ElapsedSeconds() < min_seconds);
  return t.ElapsedSeconds() / reps;
}

/// Every JSON result line emitted so far, in emission order — the body of
/// the BENCH_<name>.json artifact WriteBenchArtifact writes.
inline std::vector<std::string>& RecordedRuns() {
  static std::vector<std::string> runs;
  return runs;
}

/// Prints one machine-readable result line (a complete JSON object) on
/// stdout and records it for WriteBenchArtifact. Benches with bespoke
/// schemas call this directly; the structured overloads below route
/// through it.
inline void EmitJsonLine(const std::string& line) {
  std::printf("%s\n", line.c_str());
  RecordedRuns().push_back(line);
}

/// One machine-readable result line on stdout, alongside the human tables:
/// {"bench":...,"engine":...,"dataset":...,"op":...,"wall_ms":...,
///  "bytes":...}. Harness scripts filter stdout for lines starting with
/// '{"bench"'. `bytes` is the engine's MemoryBytes (0 for index-free
/// engines).
inline void EmitJson(const std::string& bench, const std::string& engine,
                     const std::string& dataset, const std::string& op,
                     double wall_ms, uint64_t bytes) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"%s\",\"engine\":\"%s\",\"dataset\":\"%s\","
      "\"op\":\"%s\",\"wall_ms\":%.6f,\"bytes\":%llu}",
      bench.c_str(), engine.c_str(), dataset.c_str(), op.c_str(), wall_ms,
      static_cast<unsigned long long>(bytes));
  EmitJsonLine(buf);
}

/// EmitJson with extra comma-separated "key":value fields (no braces, no
/// leading comma), as produced by MetricRegistry::JsonFields or
/// PhaseJsonFields. Empty `extra` degrades to the plain line.
inline void EmitJson(const std::string& bench, const std::string& engine,
                     const std::string& dataset, const std::string& op,
                     double wall_ms, uint64_t bytes,
                     const std::string& extra) {
  if (extra.empty()) {
    EmitJson(bench, engine, dataset, op, wall_ms, bytes);
    return;
  }
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"%s\",\"engine\":\"%s\",\"dataset\":\"%s\","
      "\"op\":\"%s\",\"wall_ms\":%.6f,\"bytes\":%llu,",
      bench.c_str(), engine.c_str(), dataset.c_str(), op.c_str(), wall_ms,
      static_cast<unsigned long long>(bytes));
  EmitJsonLine(std::string(buf) + extra + "}");
}

/// Writes every recorded result line to $ESD_BENCH_OUT/BENCH_<bench>.json
/// as one canonical artifact CI archives:
///   {"bench":"<name>","schema_version":1,"scale":S,"runs":[line,...]}
/// Call once at the end of main; a no-op when $ESD_BENCH_OUT is unset (so
/// ad-hoc and ctest runs stay file-free). Returns false (with a stderr
/// diagnostic) only when the variable is set and the write fails.
inline bool WriteBenchArtifact(const std::string& bench) {
  const char* dir = std::getenv("ESD_BENCH_OUT");
  if (dir == nullptr || dir[0] == '\0') return true;
  const std::string path = std::string(dir) + "/BENCH_" + bench + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "%s: cannot write bench artifact %s\n",
                 bench.c_str(), path.c_str());
    return false;
  }
  std::fprintf(f, "{\"bench\":\"%s\",\"schema_version\":1,\"scale\":%g,",
               bench.c_str(), BenchScale());
  std::fprintf(f, "\"runs\":[");
  const std::vector<std::string>& runs = RecordedRuns();
  for (size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(f, "%s%s", i == 0 ? "\n" : ",\n", runs[i].c_str());
  }
  std::fprintf(f, "\n]}\n");
  const bool ok = std::fclose(f) == 0;
  if (ok) {
    std::fprintf(stderr, "%s: bench artifact written to %s (%zu runs)\n",
                 bench.c_str(), path.c_str(), runs.size());
  } else {
    std::fprintf(stderr, "%s: bench artifact close failed for %s\n",
                 bench.c_str(), path.c_str());
  }
  return ok;
}

/// Every builder phase that PhaseSeries can charge time to (short names;
/// the backing gauge is esd_phase_build_<name>_seconds on the global
/// registry). Gauges exist in both ESD_OBS modes, so phase breakdowns
/// survive ESD_OBS=OFF even though spans do not.
inline const std::vector<std::string>& BuildPhaseNames() {
  static const std::vector<std::string> names{
      "ego_bfs",       "dsu_init",    "orientation", "clique_enum",
      "extract_sizes", "hlist_build", "slab_sort"};
  return names;
}

/// Point snapshot of the cumulative per-phase gauges, index-aligned with
/// BuildPhaseNames(). Subtract two snapshots to isolate one build.
inline std::vector<double> SnapBuildPhaseSeconds() {
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  std::vector<double> out;
  out.reserve(BuildPhaseNames().size());
  for (const std::string& name : BuildPhaseNames()) {
    out.push_back(reg.GaugeValue("esd_phase_build_" + name + "_seconds"));
  }
  return out;
}

/// JSON fields ("phase_<name>_ms":V, comma-separated, no leading comma)
/// for the phases that ran between two SnapBuildPhaseSeconds snapshots.
inline std::string PhaseJsonFields(const std::vector<double>& before,
                                   const std::vector<double>& after) {
  const std::vector<std::string>& names = BuildPhaseNames();
  std::string out;
  char buf[96];
  for (size_t i = 0; i < names.size() && i < after.size(); ++i) {
    const double ms = (after[i] - (i < before.size() ? before[i] : 0)) * 1e3;
    if (ms <= 0) continue;
    std::snprintf(buf, sizeof(buf), "\"phase_%s_ms\":%.3f,",
                  names[i].c_str(), ms);
    out += buf;
  }
  if (!out.empty()) out.pop_back();  // trailing comma
  return out;
}

/// Writes the spans collected so far to $ESD_TRACE_OUT as Chrome trace
/// JSON (load via chrome://tracing or Perfetto). Call once at the end of
/// main; a no-op when the variable is unset. Under ESD_OBS=OFF the write
/// fails with a diagnostic instead of producing an empty trace.
inline void MaybeWriteTrace(const std::string& bench) {
  const char* path = std::getenv("ESD_TRACE_OUT");
  if (path == nullptr || path[0] == '\0') return;
  std::string error;
  if (obs::Tracer::Global().WriteChromeTrace(path, &error)) {
    std::fprintf(stderr, "%s: trace written to %s\n", bench.c_str(), path);
  } else {
    std::fprintf(stderr, "%s: trace not written: %s\n", bench.c_str(),
                 error.c_str());
  }
}

}  // namespace esd::bench

#endif  // ESD_BENCH_BENCH_COMMON_H_
