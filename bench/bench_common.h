#ifndef ESD_BENCH_BENCH_COMMON_H_
#define ESD_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "gen/datasets.h"
#include "graph/graph.h"
#include "util/timer.h"

namespace esd::bench {

/// Scale knob for all dataset-driven benches: ESD_BENCH_SCALE=2.0 doubles
/// every synthetic dataset's vertex budget. Default 1.0 (~1/100 of the
/// paper's graphs; sized for a single core).
inline double BenchScale() {
  const char* env = std::getenv("ESD_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 1.0;
}

/// Loads a standard dataset at the bench scale.
inline gen::Dataset Load(const std::string& name) {
  return gen::LoadStandardDataset(name, BenchScale());
}

/// All five Table-I stand-ins at the bench scale.
inline std::vector<gen::Dataset> LoadAll() {
  std::vector<gen::Dataset> out;
  for (const std::string& name : gen::StandardDatasetNames()) {
    out.push_back(Load(name));
  }
  return out;
}

/// Times `fn()` once and returns seconds.
template <typename Fn>
double TimeOnce(Fn&& fn) {
  util::Timer t;
  fn();
  return t.ElapsedSeconds();
}

/// Times `fn()` repeatedly (at least `min_reps`, at least `min_seconds`
/// total) and returns the mean seconds per call. For sub-millisecond
/// operations.
template <typename Fn>
double TimeMean(Fn&& fn, int min_reps = 5, double min_seconds = 0.05) {
  util::Timer t;
  int reps = 0;
  do {
    fn();
    ++reps;
  } while (reps < min_reps || t.ElapsedSeconds() < min_seconds);
  return t.ElapsedSeconds() / reps;
}

/// One machine-readable result line on stdout, alongside the human tables:
/// {"bench":...,"engine":...,"dataset":...,"op":...,"wall_ms":...,
///  "bytes":...}. Harness scripts filter stdout for lines starting with
/// '{"bench"'. `bytes` is the engine's MemoryBytes (0 for index-free
/// engines).
inline void EmitJson(const std::string& bench, const std::string& engine,
                     const std::string& dataset, const std::string& op,
                     double wall_ms, uint64_t bytes) {
  std::printf(
      "{\"bench\":\"%s\",\"engine\":\"%s\",\"dataset\":\"%s\","
      "\"op\":\"%s\",\"wall_ms\":%.6f,\"bytes\":%llu}\n",
      bench.c_str(), engine.c_str(), dataset.c_str(), op.c_str(), wall_ms,
      static_cast<unsigned long long>(bytes));
}

}  // namespace esd::bench

#endif  // ESD_BENCH_BENCH_COMMON_H_
