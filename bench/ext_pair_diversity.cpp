// Extension experiment: friend suggestion via non-adjacent pair structural
// diversity (Dong et al., KDD'17 — the paper's motivating prior work).
// Measures the dequeue-twice candidate search on each dataset and reports
// how differently pair diversity and raw common-neighbor counting rank the
// same candidate links.

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_common.h"
#include "core/pair_diversity.h"
#include "graph/graph.h"
#include "util/timer.h"

int main() {
  using namespace esd;

  const uint32_t k = 20, tau = 2;
  const size_t cap = 300000;
  std::printf("top-%u non-adjacent pairs (tau=%u, candidate cap %zu)\n\n", k,
              tau, cap);
  std::printf("%-15s %12s %12s %16s %18s\n", "dataset", "time (ms)",
              "top score", "mean |N(u,v)|", "overlap with CN-20");
  for (const gen::Dataset& d : bench::LoadAll()) {
    util::Timer t;
    std::vector<core::ScoredPair> top =
        core::TopKNonAdjacentPairs(d.graph, k, tau, cap);
    double ms = t.ElapsedMillis();
    double mean_cn = 0;
    for (const auto& p : top) {
      mean_cn += graph::CountCommonNeighbors(d.graph, p.u, p.v);
    }
    if (!top.empty()) mean_cn /= static_cast<double>(top.size());

    // Rank the same candidates by raw common neighbors (tau=1 cap run),
    // and count the overlap of the two top-k sets.
    std::vector<core::ScoredPair> cn_pool =
        core::TopKNonAdjacentPairs(d.graph, 400, 1, cap);
    std::sort(cn_pool.begin(), cn_pool.end(),
              [&d](const core::ScoredPair& a, const core::ScoredPair& b) {
                return graph::CountCommonNeighbors(d.graph, a.u, a.v) >
                       graph::CountCommonNeighbors(d.graph, b.u, b.v);
              });
    std::set<std::pair<uint32_t, uint32_t>> cn_top;
    for (size_t i = 0; i < std::min<size_t>(k, cn_pool.size()); ++i) {
      cn_top.emplace(cn_pool[i].u, cn_pool[i].v);
    }
    uint32_t overlap = 0;
    for (const auto& p : top) overlap += cn_top.count({p.u, p.v});

    std::printf("%-15s %12.1f %12u %16.1f %15u/%u\n", d.name.c_str(), ms,
                top.empty() ? 0 : top.front().score, mean_cn, overlap, k);
  }
  std::printf(
      "\nReading: diversity-ranked suggestions barely overlap the classic\n"
      "common-neighbor ranking — they surface pairs whose shared contacts\n"
      "span several independent circles (Dong et al.'s stronger link\n"
      "predictor), not pairs inside one dense cluster.\n");
  return 0;
}
