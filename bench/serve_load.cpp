// Serving-layer load generator: drives EsdQueryService over one shared
// FrozenEsdIndex with a Zipfian (tau, k) mix, in two modes:
//
//   closed loop — C client threads each submit-and-wait in a tight loop
//                 (throughput-bound; sweeps the service worker count),
//   open loop   — one submitter paces requests at a fixed arrival rate with
//                 per-request deadlines (latency/shedding under load), and
//   live mixed  — same closed-loop readers, but the engine is a LiveEsdIndex
//                 with a background writer streaming WAL-durable updates at
//                 ESD_WRITE_RATE updates/s (default 2000, ~70% inserts);
//                 reports read tails plus snapshot staleness (seq lag and
//                 epoch age) while epochs hot-swap under the readers.
//
// With --socket <host:port> the binary instead acts as a network load
// client against a running `esd_server --listen` (binary wire protocol),
// sweeping connection count {1,4,16,64} x pipelining depth {1,8} and
// reporting client-side throughput and p50/p95/p99 per point. Exits
// nonzero if any response fails to parse or any cid comes back out of
// order — the wire protocol's ordering guarantee is part of what this
// mode measures.
//
// ESD_SCORER=esd|truss|egobw selects the diversity scorer the whole run
// serves (default esd); every JSON line carries a "scorer" column so
// harness scripts can compare scorers on identical workloads.
//
// Reports throughput plus p50/p95/p99 end-to-end latency and the per-stage
// (queue wait vs execute) tails from the serve metrics layer, as human
// tables and as the machine-readable JSON lines bench_common.h emits.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/scorer.h"
#include "live/live_index.h"
#include "net/client.h"
#include "net/wire.h"
#include "obs/trace.h"
#include "serve/metrics.h"
#include "serve/query_service.h"
#include "shard/sharded_engine.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using esd::core::DiversityScorer;
using esd::core::FrozenEsdIndex;

/// Scorer of this run (ESD_SCORER env; default esd). Set once in main
/// before any worker starts; read-only afterwards.
const DiversityScorer* g_scorer = &esd::core::EsdScorer();
using esd::serve::EsdQueryService;
using esd::serve::MetricsSnapshot;
using esd::serve::QueryRequest;
using esd::serve::ResponseStatus;

/// Zipf(s) sampler over ranks 0..n-1: weight (rank+1)^-s. s=1 matches the
/// usual serving-traffic skew (a few hot parameter combinations, a long
/// tail of rare ones); s=0 degenerates to uniform; larger s concentrates
/// harder — the knob the skew sweep turns.
class Zipf {
 public:
  explicit Zipf(size_t n, double s = 1.0) : cdf_(n) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += s == 0.0 ? 1.0 : 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }
  size_t Sample(esd::util::Rng& rng) const {
    const double u = rng.NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// The benchmark's request mix: Zipfian over a tau ladder and a k ladder.
struct Workload {
  std::vector<uint32_t> taus{1, 2, 3, 4, 6, 8};
  std::vector<uint32_t> ks{10, 1, 50, 100};  // rank order = popularity
  Zipf tau_zipf{taus.size()};
  Zipf k_zipf{ks.size()};

  Workload() = default;
  /// Custom ladders with one skew exponent for both dimensions — the skew
  /// sweep's constructor.
  Workload(std::vector<uint32_t> t, std::vector<uint32_t> kk, double s)
      : taus(std::move(t)),
        ks(std::move(kk)),
        tau_zipf(taus.size(), s),
        k_zipf(ks.size(), s) {}

  QueryRequest Draw(esd::util::Rng& rng) const {
    QueryRequest rq;
    rq.tau = taus[tau_zipf.Sample(rng)];
    rq.k = ks[k_zipf.Sample(rng)];
    return rq;
  }
};

void PrintHeader() {
  std::printf("%-12s %8s %8s %10s %10s %10s %10s %8s %8s\n", "mode",
              "workers", "clients", "qps", "p50(us)", "p95(us)", "p99(us)",
              "rej", "missed");
}

void PrintRow(const char* mode, unsigned workers, unsigned clients,
              double qps, const MetricsSnapshot& snap) {
  std::printf("%-12s %8u %8u %10.0f %10.1f %10.1f %10.1f %8llu %8llu\n",
              mode, workers, clients, qps, snap.total.p50_us,
              snap.total.p95_us, snap.total.p99_us,
              static_cast<unsigned long long>(snap.rejected),
              static_cast<unsigned long long>(snap.deadline_missed));
}

/// Workload/config fields shared by every serve_load JSON line, so the
/// BENCH_serve_load.json artifact is self-describing: who generated the
/// load (workers/clients/requests) against what.
std::string ConfigJsonFields(unsigned workers, unsigned clients,
                             uint64_t requests) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "\"workers\":%u,\"clients\":%u,\"requests\":%llu", workers,
                clients, static_cast<unsigned long long>(requests));
  return buf;
}

void EmitServeJson(const std::string& dataset, const std::string& op,
                   double wall_ms, uint64_t bytes,
                   const MetricsSnapshot& snap, double qps, unsigned workers,
                   unsigned clients, uint64_t requests) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"bench\":\"serve_load\",\"engine\":\"frozen\",\"scorer\":\"%s\","
      "\"dataset\":\"%s\","
      "\"op\":\"%s\",\"wall_ms\":%.6f,\"bytes\":%llu,\"qps\":%.1f,",
      std::string(g_scorer->Name()).c_str(), dataset.c_str(), op.c_str(),
      wall_ms, static_cast<unsigned long long>(bytes), qps);
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                ",\"queue_p50_us\":%.1f,\"exec_p50_us\":%.1f,"
                "\"mean_us\":%.1f}",
                snap.queue_wait.p50_us, snap.execute.p50_us,
                snap.total.mean_us);
  esd::bench::EmitJsonLine(
      std::string(buf) + ConfigJsonFields(workers, clients, requests) + "," +
      esd::serve::MetricsJsonFields(snap) + "," +
      esd::serve::StageJsonFields(snap) + tail);
}

/// Closed loop: `clients` threads submit-and-wait until `total` requests
/// have been answered. Returns achieved qps. cache_bytes > 0 turns on the
/// service's result cache (capacity `cache_entries`, one shard so the
/// capacity semantics are exact) and fills *out_cache.
double RunClosedLoop(const FrozenEsdIndex& frozen, const Workload& mix,
                     unsigned workers, unsigned clients, uint64_t total,
                     MetricsSnapshot* out_snap, double* out_wall_ms,
                     size_t cache_bytes = 0, size_t cache_entries = 16,
                     esd::serve::ResultCache::Stats* out_cache = nullptr) {
  EsdQueryService::Options opts;
  opts.num_threads = workers;
  opts.max_queue = 1 << 15;
  opts.cache_bytes = cache_bytes;
  opts.cache_entries = cache_entries;
  opts.cache_shards = 1;
  EsdQueryService service(frozen, opts);
  // Signed: fetch_sub may legitimately run the shared ticket counter below
  // zero (one overshoot per client); unsigned would wrap and never stop.
  std::atomic<int64_t> remaining{static_cast<int64_t>(total)};
  esd::util::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      esd::util::Rng rng(0x5E41 + c);
      while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
        (void)service.Query(mix.Draw(rng));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();
  service.Stop();
  *out_snap = service.metrics().Snap();
  if (out_cache != nullptr && service.cache() != nullptr) {
    *out_cache = service.cache()->Snap();
  }
  *out_wall_ms = wall_s * 1e3;
  return static_cast<double>(total) / wall_s;
}

/// Open loop: one submitter paces `total` requests at `rate_qps` with a
/// deadline on every request; responses are collected asynchronously.
double RunOpenLoop(const FrozenEsdIndex& frozen, const Workload& mix,
                   unsigned workers, double rate_qps, uint64_t total,
                   uint64_t deadline_us, MetricsSnapshot* out_snap,
                   double* out_wall_ms) {
  EsdQueryService::Options opts;
  opts.num_threads = workers;
  opts.max_queue = 1024;
  EsdQueryService service(frozen, opts);
  esd::util::Rng rng(0xA11CE);
  const double gap_s = 1.0 / rate_qps;
  std::vector<std::future<esd::serve::QueryResponse>> futures;
  futures.reserve(total);
  esd::util::Timer wall;
  for (uint64_t i = 0; i < total; ++i) {
    QueryRequest rq = mix.Draw(rng);
    rq.deadline_us = deadline_us;
    futures.push_back(service.Submit(rq));
    // Busy-ish pacing: sleep the residual of this request's slot.
    const double target = static_cast<double>(i + 1) * gap_s;
    double now = wall.ElapsedSeconds();
    if (target > now) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(target - now));
    }
  }
  for (auto& f : futures) (void)f.get();
  const double wall_s = wall.ElapsedSeconds();
  service.Stop();
  *out_snap = service.metrics().Snap();
  *out_wall_ms = wall_s * 1e3;
  return static_cast<double>(total) / wall_s;
}

/// Staleness and write-side tallies of one live-mixed run.
struct LiveMixedResult {
  double qps = 0;
  double write_rate_achieved = 0;
  uint64_t updates_applied = 0;
  uint64_t epochs = 0;
  uint64_t lag_max = 0;
  double lag_mean = 0;
  double age_max_s = 0;
  MetricsSnapshot snap;
  double wall_ms = 0;
};

/// Live mixed: `clients` closed-loop readers against a LiveEsdIndex while a
/// background writer streams batches of 16 WAL-durable updates (one fsync
/// per batch) paced at `write_rate` updates/s. The writer samples snapshot
/// staleness (applied_seq minus the published epoch's watermark, and the
/// epoch's age) after every batch.
bool RunLiveMixed(const esd::graph::Graph& g, const Workload& mix,
                  unsigned workers, unsigned clients, uint64_t total_reads,
                  double write_rate, LiveMixedResult* out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path dir = fs::temp_directory_path() / "esd_serve_load_live";
  fs::remove_all(dir, ec);
  fs::create_directories(dir, ec);

  esd::live::LiveOptions lopts;
  lopts.wal_path = (dir / "wal.bin").string();
  lopts.snapshot_path = (dir / "snapshot.bin").string();
  lopts.refreeze_every = 256;
  lopts.scorer = g_scorer->Kind();
  std::string error;
  std::unique_ptr<esd::live::LiveEsdIndex> live =
      esd::live::LiveEsdIndex::Open(g, lopts, &error);
  if (live == nullptr) {
    std::fprintf(stderr, "live index open failed: %s\n", error.c_str());
    return false;
  }

  EsdQueryService::Options opts;
  opts.num_threads = workers;
  opts.max_queue = 1 << 15;
  EsdQueryService service(live->EngineProvider(), opts);

  std::atomic<int64_t> remaining{static_cast<int64_t>(total_reads)};
  std::atomic<bool> stop{false};
  std::atomic<bool> writer_failed{false};
  // Readers keep serving (past total_reads if needed) until the writer has
  // streamed enough for at least 3 epoch swaps, so the staleness numbers
  // always reflect hot-swapping, not one static boot epoch.
  const uint64_t min_updates = 3 * lopts.refreeze_every + 64;
  std::atomic<uint64_t> updates_sent{0};
  esd::util::Timer wall;

  std::thread writer([&] {
    esd::util::Rng rng(0xF00D);
    const uint64_t n = g.NumVertices();
    constexpr size_t kBatch = 16;
    std::vector<esd::live::LiveUpdate> batch(kBatch);
    uint64_t sent = 0, lag_sum = 0, samples = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      for (esd::live::LiveUpdate& up : batch) {
        up.kind = rng.NextBool(0.7) ? esd::live::UpdateKind::kInsert
                                    : esd::live::UpdateKind::kDelete;
        up.u = static_cast<esd::graph::VertexId>(rng.NextBounded(n));
        up.v = static_cast<esd::graph::VertexId>(rng.NextBounded(n));
        if (up.u == up.v) up.v = (up.v + 1) % n;
      }
      std::string werr;
      if (live->ApplyBatch(batch, &werr) != batch.size()) {
        std::fprintf(stderr, "live writer failed: %s\n", werr.c_str());
        writer_failed.store(true);
        return;
      }
      sent += kBatch;
      updates_sent.store(sent, std::memory_order_relaxed);
      const esd::live::LiveStats stats = live->Stats();
      out->lag_max = std::max(out->lag_max, stats.snapshot_lag);
      out->age_max_s = std::max(out->age_max_s, stats.snapshot_age_s);
      lag_sum += stats.snapshot_lag;
      ++samples;
      const double target = static_cast<double>(sent) / write_rate;
      const double now = wall.ElapsedSeconds();
      if (target > now) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(target - now));
      }
    }
    out->updates_applied = sent;
    out->lag_mean =
        samples > 0 ? static_cast<double>(lag_sum) / samples : 0.0;
  });

  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      esd::util::Rng rng(0x11FE + c);
      while (true) {
        const bool reads_left =
            remaining.fetch_sub(1, std::memory_order_relaxed) > 0;
        const bool writer_pending =
            updates_sent.load(std::memory_order_relaxed) < min_updates &&
            !writer_failed.load(std::memory_order_relaxed);
        if (!reads_left && !writer_pending) break;
        (void)service.Query(mix.Draw(rng));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();
  stop.store(true);
  writer.join();
  service.Stop();

  const esd::live::LiveStats stats = live->Stats();
  out->epochs = stats.refreezes;
  out->write_rate_achieved =
      wall_s > 0 ? static_cast<double>(out->updates_applied) / wall_s : 0.0;
  out->snap = service.metrics().Snap();
  out->wall_ms = wall_s * 1e3;
  out->qps = wall_s > 0 ? static_cast<double>(out->snap.completed) / wall_s
                        : 0.0;
  fs::remove_all(dir, ec);
  return !writer_failed.load();
}

/// Client-side latency percentile (sorts in place; q in [0,1]).
double Percentile(std::vector<double>* lat_us, double q) {
  if (lat_us->empty()) return 0.0;
  std::sort(lat_us->begin(), lat_us->end());
  const size_t idx = std::min(
      lat_us->size() - 1,
      static_cast<size_t>(q * static_cast<double>(lat_us->size())));
  return (*lat_us)[idx];
}

/// One socket-sweep point: `conns` connections, each keeping `pipeline`
/// binary queries in flight against a running esd_server. Latency is
/// measured client-side, send to matching response (pipelined requests
/// therefore include their time queued behind pipeline-mates — the number
/// a real pipelining client experiences). Any parse failure or
/// out-of-order cid echo counts as an error.
struct SocketPointResult {
  double qps = 0;
  double wall_ms = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  uint64_t completed = 0;
  uint64_t errors = 0;
};

SocketPointResult RunSocketPoint(const std::string& host, uint16_t port,
                                 unsigned conns, unsigned pipeline,
                                 uint64_t per_conn, const Workload& mix) {
  SocketPointResult res;
  std::mutex agg_mu;
  std::vector<double> lat_us;
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> completed{0};
  esd::util::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(conns);
  for (unsigned c = 0; c < conns; ++c) {
    threads.emplace_back([&, c] {
      esd::net::BlockingClient client;
      std::string err;
      if (!client.Connect(host, port, &err)) {
        errors.fetch_add(1);
        return;
      }
      esd::util::Rng rng(0x50C4E7 + c);
      std::vector<double> local;
      local.reserve(per_conn);
      // The server answers each connection in submission order, so the
      // send-time queue fronts pair with responses as they arrive; the
      // echoed cid double-checks that ordering contract on every reply.
      std::deque<std::pair<uint64_t, uint64_t>> inflight;  // cid, send_ns
      uint64_t next_cid = 1;
      uint64_t sent = 0;
      uint64_t done = 0;
      while (done < per_conn) {
        while (sent < per_conn && inflight.size() < pipeline) {
          const QueryRequest rq = mix.Draw(rng);
          esd::net::QueryFrame q;
          q.cid = next_cid++;
          q.k = rq.k;
          q.tau = rq.tau;
          q.pad_with_zero_edges = 1;
          const uint64_t t0 = esd::obs::MonotonicNanos();
          if (!client.SendQuery(q)) {
            errors.fetch_add(1);
            goto conn_done;
          }
          inflight.emplace_back(q.cid, t0);
          ++sent;
        }
        {
          esd::net::Frame frame;
          esd::net::QueryResultFrame result;
          if (client.RecvFrame(&frame) != esd::net::WireStatus::kOk ||
              frame.type != esd::net::FrameType::kQueryResult ||
              esd::net::DecodeQueryResult(frame.payload, &result) !=
                  esd::net::WireStatus::kOk ||
              inflight.empty() || result.cid != inflight.front().first) {
            errors.fetch_add(1);
            goto conn_done;
          }
          const uint64_t t1 = esd::obs::MonotonicNanos();
          local.push_back(static_cast<double>(t1 - inflight.front().second) *
                          1e-3);
          inflight.pop_front();
          ++done;
        }
      }
    conn_done:
      completed.fetch_add(done);
      std::lock_guard<std::mutex> lock(agg_mu);
      lat_us.insert(lat_us.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();
  res.wall_ms = wall_s * 1e3;
  res.completed = completed.load();
  res.errors = errors.load();
  res.qps = wall_s > 0 ? static_cast<double>(res.completed) / wall_s : 0.0;
  res.p50_us = Percentile(&lat_us, 0.50);
  res.p95_us = Percentile(&lat_us, 0.95);
  res.p99_us = Percentile(&lat_us, 0.99);
  return res;
}

int RunSocketMode(const std::string& host, uint16_t port) {
  const double scale = esd::bench::BenchScale();
  const Workload mix;
  std::printf("socket client mode: target %s:%u\n", host.c_str(), port);
  std::printf("%-16s %6s %9s %10s %10s %10s %10s %7s\n", "op", "conns",
              "pipeline", "qps", "p50(us)", "p95(us)", "p99(us)", "errors");
  uint64_t total_errors = 0;
  for (const unsigned conns : {1u, 4u, 16u, 64u}) {
    for (const unsigned pipeline : {1u, 8u}) {
      const uint64_t per_conn = std::max<uint64_t>(
          32, static_cast<uint64_t>(8000 * scale) / conns);
      const SocketPointResult r =
          RunSocketPoint(host, port, conns, pipeline, per_conn, mix);
      total_errors += r.errors;
      char op[40];
      std::snprintf(op, sizeof(op), "socket-c%u-p%u", conns, pipeline);
      std::printf("%-16s %6u %9u %10.0f %10.1f %10.1f %10.1f %7llu\n", op,
                  conns, pipeline, r.qps, r.p50_us, r.p95_us, r.p99_us,
                  static_cast<unsigned long long>(r.errors));
      char line[512];
      std::snprintf(
          line, sizeof(line),
          "{\"bench\":\"serve_load\",\"engine\":\"socket\",\"scorer\":\"%s\","
          "\"dataset\":\"remote\",\"op\":\"%s\",\"wall_ms\":%.6f,"
          "\"qps\":%.1f,\"conns\":%u,\"pipeline\":%u,\"requests\":%llu,"
          "\"p50_us\":%.1f,\"p95_us\":%.1f,\"p99_us\":%.1f,\"errors\":%llu}",
          std::string(g_scorer->Name()).c_str(), op, r.wall_ms, r.qps, conns,
          pipeline, static_cast<unsigned long long>(r.completed), r.p50_us,
          r.p95_us, r.p99_us, static_cast<unsigned long long>(r.errors));
      esd::bench::EmitJsonLine(line);
    }
  }
  if (total_errors > 0) {
    std::fprintf(stderr,
                 "socket mode: %llu errors (parse failures, transport "
                 "errors, or out-of-order cids)\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  if (!esd::bench::WriteBenchArtifact("serve_load")) return 1;
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace esd;

  // --socket <host:port>: act as a network load client against a running
  // esd_server --listen instead of standing up an in-process service.
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--socket" && i + 1 < argc) {
      const std::string target = argv[i + 1];
      const size_t colon = target.rfind(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "usage: serve_load --socket <host:port>\n");
        return 2;
      }
      const std::string host = target.substr(0, colon);
      const int port = std::atoi(target.c_str() + colon + 1);
      if (port <= 0 || port > 65535) {
        std::fprintf(stderr, "bad port in --socket %s\n", target.c_str());
        return 2;
      }
      return RunSocketMode(host, static_cast<uint16_t>(port));
    }
  }

  // Span collection costs real per-request work at these request rates
  // (each served request emits its stage spans into the trace ring).
  // Collect only when a trace sink is armed, so the throughput numbers
  // reflect the always-on telemetry: stage histograms + slow log.
  if (std::getenv("ESD_TRACE_OUT") == nullptr) {
    obs::Tracer::Global().SetEnabled(false);
  }

  if (const char* env = std::getenv("ESD_SCORER")) {
    const core::DiversityScorer* s = core::FindScorer(env);
    if (s == nullptr) {
      std::fprintf(stderr, "unknown ESD_SCORER '%s'\n", env);
      return 2;
    }
    g_scorer = s;
  }

  const gen::Dataset d = bench::Load("pokec-s");
  std::printf("dataset %s: n=%u m=%u (scorer %s)\n", d.name.c_str(),
              d.graph.NumVertices(), d.graph.NumEdges(),
              std::string(g_scorer->Name()).c_str());
  util::Timer build;
  const FrozenEsdIndex frozen = core::BuildFrozenIndex(d.graph, *g_scorer);
  std::printf("frozen index build: %.1f ms, %.2f MiB\n\n",
              build.ElapsedMillis(),
              static_cast<double>(frozen.MemoryBytes()) / (1024.0 * 1024.0));

  const Workload mix;
  const double scale = bench::BenchScale();
  const uint64_t closed_total = static_cast<uint64_t>(20000 * scale);
  const unsigned hw = util::ThreadPool::DefaultThreadCount();

  PrintHeader();
  std::vector<unsigned> worker_sweep{1, 2, 4};
  if (hw > 4) worker_sweep.push_back(hw);
  double single_thread_qps = 0;
  double best_multi_qps = 0;
  for (unsigned workers : worker_sweep) {
    const unsigned clients = std::max(2u, 2 * workers);
    MetricsSnapshot snap;
    double wall_ms = 0;
    const double qps = RunClosedLoop(frozen, mix, workers, clients,
                                     closed_total, &snap, &wall_ms);
    if (workers == 1) single_thread_qps = qps;
    if (workers > 1) best_multi_qps = std::max(best_multi_qps, qps);
    char op[32];
    std::snprintf(op, sizeof(op), "closed-w%u", workers);
    PrintRow("closed", workers, clients, qps, snap);
    EmitServeJson(d.name, op, wall_ms, frozen.MemoryBytes(), snap, qps,
                  workers, clients, closed_total);
  }

  // Open loop at ~60% of the measured closed-loop capacity, with a
  // deadline at ~20x the closed-loop p95 (so only true stalls shed).
  {
    const double rate = std::max(1000.0, 0.6 * single_thread_qps);
    const uint64_t open_total = static_cast<uint64_t>(5000 * scale);
    MetricsSnapshot snap;
    double wall_ms = 0;
    const double qps = RunOpenLoop(frozen, mix, hw, rate, open_total,
                                   /*deadline_us=*/100000, &snap, &wall_ms);
    PrintRow("open", hw, 1, qps, snap);
    EmitServeJson(d.name, "open-loop", wall_ms, frozen.MemoryBytes(), snap,
                  qps, hw, 1, open_total);
  }

  // Live mixed: readers against a hot-swapping LiveEsdIndex while a
  // background writer streams WAL-durable updates.
  {
    double write_rate = 2000.0;
    if (const char* env = std::getenv("ESD_WRITE_RATE")) {
      const double v = std::atof(env);
      if (v > 0) write_rate = v;
    }
    const uint64_t live_reads = static_cast<uint64_t>(10000 * scale);
    const unsigned workers = std::max(2u, hw / 2);
    const unsigned clients = 2 * workers;
    LiveMixedResult live;
    if (RunLiveMixed(d.graph, mix, workers, clients, live_reads, write_rate,
                     &live)) {
      PrintRow("live-mixed", workers, clients, live.qps, live.snap);
      std::printf(
          "  writer: %llu updates @ %.0f/s (target %.0f/s), epochs %llu, "
          "staleness lag mean/max %.1f/%llu updates, epoch age max %.3f s\n",
          static_cast<unsigned long long>(live.updates_applied),
          live.write_rate_achieved, write_rate,
          static_cast<unsigned long long>(live.epochs), live.lag_mean,
          static_cast<unsigned long long>(live.lag_max), live.age_max_s);
      char head[256], tail[256];
      std::snprintf(
          head, sizeof(head),
          "{\"bench\":\"serve_load\",\"engine\":\"live\",\"scorer\":\"%s\","
          "\"dataset\":\"%s\","
          "\"op\":\"live-mixed\",\"wall_ms\":%.6f,\"qps\":%.1f,",
          std::string(g_scorer->Name()).c_str(), d.name.c_str(),
          live.wall_ms, live.qps);
      std::snprintf(
          tail, sizeof(tail),
          ",\"write_rate\":%.1f,\"updates\":%llu,\"epochs\":%llu,"
          "\"lag_mean\":%.2f,\"lag_max\":%llu,\"age_max_s\":%.4f}",
          live.write_rate_achieved,
          static_cast<unsigned long long>(live.updates_applied),
          static_cast<unsigned long long>(live.epochs), live.lag_mean,
          static_cast<unsigned long long>(live.lag_max), live.age_max_s);
      bench::EmitJsonLine(
          std::string(head) +
          ConfigJsonFields(workers, clients, live_reads) + "," +
          serve::MetricsJsonFields(live.snap) + "," +
          serve::StageJsonFields(live.snap) + tail);
    } else {
      std::fprintf(stderr, "live-mixed mode failed\n");
      return 1;
    }
  }

  // Skew sweep: a capacity-limited result cache under growing traffic
  // concentration. Wider (tau, k) ladders than the main mix so the uniform
  // end genuinely thrashes the 16-entry cache, while Zipf s=1.5 parks its
  // mass on a handful of hot combinations; the final row repeats the most
  // skewed point with the cache off — the miss-path cost every hit elides.
  {
    // Deep-scan mix, popularity-ordered so the HOT combinations are the
    // expensive ones: high tau leaves a near-empty slab, and the deep k
    // then falls into the O(m) zero-padding edge scan — the regime a
    // result cache exists for ("export the full diversity ranking"
    // dashboards, not point lookups). A miss costs an edge scan; a hit is
    // one result copy.
    const std::vector<uint32_t> skew_taus{32, 24, 16, 12, 8, 6, 4, 3, 2, 1};
    const std::vector<uint32_t> skew_ks{5000, 2000, 1000, 500, 200, 100};
    const uint64_t sweep_total = static_cast<uint64_t>(20000 * scale);
    const unsigned workers = 2;  // execution-bound: cache wins show in qps
    const unsigned clients = 4;
    constexpr size_t kCacheBytes = 4u << 20;
    constexpr size_t kCacheEntries = 16;
    std::printf(
        "\nskew sweep: %zu-entry result cache, %zux%zu (tau,k) ladder\n",
        kCacheEntries, skew_taus.size(), skew_ks.size());
    std::printf("%-20s %8s %10s %10s %10s %9s\n", "op", "zipf_s", "qps",
                "p99(us)", "hits", "hit_rate");
    double cached_qps = 0;
    double uncached_qps = 0;
    struct SkewCfg {
      double s;
      bool cache;
    };
    for (const SkewCfg cfg : {SkewCfg{0.0, true}, SkewCfg{0.75, true},
                              SkewCfg{1.5, true}, SkewCfg{1.5, false}}) {
      const Workload skew(skew_taus, skew_ks, cfg.s);
      MetricsSnapshot snap;
      double wall_ms = 0;
      serve::ResultCache::Stats cstats;
      const double qps = RunClosedLoop(
          frozen, skew, workers, clients, sweep_total, &snap, &wall_ms,
          cfg.cache ? kCacheBytes : 0, kCacheEntries, &cstats);
      if (cfg.cache && cfg.s == 1.5) cached_qps = qps;
      if (!cfg.cache) uncached_qps = qps;
      char op[40];
      std::snprintf(op, sizeof(op), "skew-s%.2f-%s", cfg.s,
                    cfg.cache ? "cache" : "nocache");
      std::printf("%-20s %8.2f %10.0f %10.1f %10llu %8.1f%%\n", op, cfg.s,
                  qps, snap.total.p99_us,
                  static_cast<unsigned long long>(cstats.hits),
                  100.0 * cstats.hit_rate);
      char head[256], tail[256];
      std::snprintf(
          head, sizeof(head),
          "{\"bench\":\"serve_load\",\"engine\":\"frozen\",\"scorer\":\"%s\","
          "\"dataset\":\"%s\",\"op\":\"%s\",\"wall_ms\":%.6f,"
          "\"qps\":%.1f,",
          std::string(g_scorer->Name()).c_str(), d.name.c_str(), op, wall_ms,
          qps);
      std::snprintf(tail, sizeof(tail),
                    ",\"zipf_s\":%.2f,\"cache\":%s,"
                    "\"cache_hits\":%llu,\"cache_misses\":%llu,"
                    "\"cache_evictions\":%llu,\"cache_hit_rate\":%.4f}",
                    cfg.s, cfg.cache ? "true" : "false",
                    static_cast<unsigned long long>(cstats.hits),
                    static_cast<unsigned long long>(cstats.misses),
                    static_cast<unsigned long long>(cstats.evictions),
                    cstats.hit_rate);
      bench::EmitJsonLine(std::string(head) +
                          ConfigJsonFields(workers, clients, sweep_total) +
                          "," + serve::MetricsJsonFields(snap) + "," +
                          serve::StageJsonFields(snap) + tail);
    }
    std::printf("  cache speedup at s=1.5: %.2fx (on %.0f qps / off %.0f "
                "qps)\n",
                uncached_qps > 0 ? cached_qps / uncached_qps : 0.0,
                cached_qps, uncached_qps);
  }

  // Sharded scatter-gather: the same closed-loop mix against a statically
  // partitioned fleet (ESD_SHARDS shards, default 4; 1 disables). Every
  // query probes every healthy shard, so per-shard query counts are
  // uniform by construction — the imbalance that matters is *work*: slab
  // entries drained per shard, which follows how the hash partition split
  // the hot slabs. The JSON line carries both vectors plus max/mean skew
  // ratios so regressions in partition balance show up in the artifact.
  {
    uint32_t num_shards = 4;
    if (const char* env = std::getenv("ESD_SHARDS")) {
      const long v = std::atol(env);
      num_shards = v < 1 ? 1 : static_cast<uint32_t>(v);
    }
    if (num_shards >= 2) {
      shard::ShardedOptions sopts;
      sopts.num_shards = num_shards;
      sopts.scorer = g_scorer->Kind();
      std::unique_ptr<shard::ShardedQueryEngine> sharded =
          shard::ShardedQueryEngine::BuildStatic(d.graph, sopts);
      EsdQueryService::Options opts;
      opts.num_threads = 2;
      opts.max_queue = 1 << 15;
      EsdQueryService service(*sharded, opts);
      const unsigned clients = 4;
      std::atomic<int64_t> remaining{static_cast<int64_t>(closed_total)};
      util::Timer wall;
      std::vector<std::thread> threads;
      threads.reserve(clients);
      for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
          util::Rng rng(0x54A2D + c);
          while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
            (void)service.Query(mix.Draw(rng));
          }
        });
      }
      for (std::thread& t : threads) t.join();
      const double wall_s = wall.ElapsedSeconds();
      service.Stop();
      const MetricsSnapshot snap = service.metrics().Snap();
      const double qps =
          wall_s > 0 ? static_cast<double>(closed_total) / wall_s : 0.0;

      const std::vector<shard::ShardStatus> status = sharded->Status();
      uint64_t q_max = 0, q_sum = 0, d_max = 0, d_sum = 0;
      std::string q_json = "[", d_json = "[";
      for (const shard::ShardStatus& st : status) {
        q_max = std::max(q_max, st.queries);
        q_sum += st.queries;
        d_max = std::max(d_max, st.drained);
        d_sum += st.drained;
        char elem[48];
        std::snprintf(elem, sizeof(elem), "%s%llu",
                      st.id == 0 ? "" : ",",
                      static_cast<unsigned long long>(st.queries));
        q_json += elem;
        std::snprintf(elem, sizeof(elem), "%s%llu",
                      st.id == 0 ? "" : ",",
                      static_cast<unsigned long long>(st.drained));
        d_json += elem;
      }
      q_json += "]";
      d_json += "]";
      const double q_mean =
          static_cast<double>(q_sum) / static_cast<double>(status.size());
      const double d_mean =
          static_cast<double>(d_sum) / static_cast<double>(status.size());
      const double q_skew =
          q_mean > 0 ? static_cast<double>(q_max) / q_mean : 0.0;
      const double d_skew =
          d_mean > 0 ? static_cast<double>(d_max) / d_mean : 0.0;

      std::printf("\nsharded scatter-gather: %u shards, 2 workers, "
                  "%u clients\n",
                  num_shards, clients);
      std::printf("%-8s %12s %12s %8s\n", "shard", "queries", "drained",
                  "share");
      for (const shard::ShardStatus& st : status) {
        std::printf("%-8u %12llu %12llu %7.1f%%\n", st.id,
                    static_cast<unsigned long long>(st.queries),
                    static_cast<unsigned long long>(st.drained),
                    d_sum > 0 ? 100.0 * static_cast<double>(st.drained) /
                                    static_cast<double>(d_sum)
                              : 0.0);
      }
      std::printf("  %10.0f qps; skew (max/mean): drained %.3f, "
                  "queries %.3f\n",
                  qps, d_skew, q_skew);

      char op[32];
      std::snprintf(op, sizeof(op), "sharded-n%u", num_shards);
      char head[256], tail[256];
      std::snprintf(
          head, sizeof(head),
          "{\"bench\":\"serve_load\",\"engine\":\"sharded\","
          "\"scorer\":\"%s\",\"dataset\":\"%s\",\"op\":\"%s\","
          "\"wall_ms\":%.6f,\"qps\":%.1f,\"shards\":%u,",
          std::string(g_scorer->Name()).c_str(), d.name.c_str(), op,
          wall_s * 1e3, qps, num_shards);
      std::snprintf(tail, sizeof(tail),
                    ",\"shard_queries\":%s,\"shard_drained\":%s,"
                    "\"queries_skew_max_over_mean\":%.4f,"
                    "\"drained_skew_max_over_mean\":%.4f}",
                    q_json.c_str(), d_json.c_str(), q_skew, d_skew);
      bench::EmitJsonLine(std::string(head) +
                          ConfigJsonFields(2, clients, closed_total) + "," +
                          serve::MetricsJsonFields(snap) + "," +
                          serve::StageJsonFields(snap) + tail);
    }
  }

  std::printf(
      "\nmulti-thread (best %.0f qps) vs single-thread (%.0f qps): %.2fx\n"
      "Reading: queue wait dominates execute at saturation; tau-batching\n"
      "amortizes the slab binary search across same-tau requests (see\n"
      "slab_searches_saved in the JSON lines).\n",
      best_multi_qps, single_thread_qps,
      single_thread_qps > 0 ? best_multi_qps / single_thread_qps : 0.0);
  bench::MaybeWriteTrace("serve_load");
  if (!bench::WriteBenchArtifact("serve_load")) return 1;
  return 0;
}
