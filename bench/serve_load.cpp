// Serving-layer load generator: drives EsdQueryService over one shared
// FrozenEsdIndex with a Zipfian (tau, k) mix, in two modes:
//
//   closed loop — C client threads each submit-and-wait in a tight loop
//                 (throughput-bound; sweeps the service worker count), and
//   open loop   — one submitter paces requests at a fixed arrival rate with
//                 per-request deadlines (latency/shedding under load).
//
// Reports throughput plus p50/p95/p99 end-to-end latency and the per-stage
// (queue wait vs execute) tails from the serve metrics layer, as human
// tables and as the machine-readable JSON lines bench_common.h emits.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "serve/metrics.h"
#include "serve/query_service.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace {

using esd::core::FrozenEsdIndex;
using esd::serve::EsdQueryService;
using esd::serve::MetricsSnapshot;
using esd::serve::QueryRequest;
using esd::serve::ResponseStatus;

/// Zipf(s=1) sampler over ranks 0..n-1: weight 1/(rank+1). Matches the
/// usual serving-traffic skew (a few hot parameter combinations, a long
/// tail of rare ones).
class Zipf {
 public:
  explicit Zipf(size_t n) : cdf_(n) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / static_cast<double>(i + 1);
      cdf_[i] = sum;
    }
    for (double& c : cdf_) c /= sum;
  }
  size_t Sample(esd::util::Rng& rng) const {
    const double u = rng.NextDouble();
    return static_cast<size_t>(
        std::lower_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// The benchmark's request mix: Zipfian over a tau ladder and a k ladder.
struct Workload {
  std::vector<uint32_t> taus{1, 2, 3, 4, 6, 8};
  std::vector<uint32_t> ks{10, 1, 50, 100};  // rank order = popularity
  Zipf tau_zipf{taus.size()};
  Zipf k_zipf{ks.size()};

  QueryRequest Draw(esd::util::Rng& rng) const {
    QueryRequest rq;
    rq.tau = taus[tau_zipf.Sample(rng)];
    rq.k = ks[k_zipf.Sample(rng)];
    return rq;
  }
};

void PrintHeader() {
  std::printf("%-12s %8s %8s %10s %10s %10s %10s %8s %8s\n", "mode",
              "workers", "clients", "qps", "p50(us)", "p95(us)", "p99(us)",
              "rej", "missed");
}

void PrintRow(const char* mode, unsigned workers, unsigned clients,
              double qps, const MetricsSnapshot& snap) {
  std::printf("%-12s %8u %8u %10.0f %10.1f %10.1f %10.1f %8llu %8llu\n",
              mode, workers, clients, qps, snap.total.p50_us,
              snap.total.p95_us, snap.total.p99_us,
              static_cast<unsigned long long>(snap.rejected),
              static_cast<unsigned long long>(snap.deadline_missed));
}

void EmitServeJson(const std::string& dataset, const std::string& op,
                   double wall_ms, uint64_t bytes,
                   const MetricsSnapshot& snap, double qps) {
  std::printf(
      "{\"bench\":\"serve_load\",\"engine\":\"frozen\",\"dataset\":\"%s\","
      "\"op\":\"%s\",\"wall_ms\":%.6f,\"bytes\":%llu,\"qps\":%.1f,%s,"
      "\"queue_p50_us\":%.1f,\"exec_p50_us\":%.1f,\"mean_us\":%.1f}\n",
      dataset.c_str(), op.c_str(), wall_ms,
      static_cast<unsigned long long>(bytes), qps,
      esd::serve::MetricsJsonFields(snap).c_str(), snap.queue_wait.p50_us,
      snap.execute.p50_us, snap.total.mean_us);
}

/// Closed loop: `clients` threads submit-and-wait until `total` requests
/// have been answered. Returns achieved qps.
double RunClosedLoop(const FrozenEsdIndex& frozen, const Workload& mix,
                     unsigned workers, unsigned clients, uint64_t total,
                     MetricsSnapshot* out_snap, double* out_wall_ms) {
  EsdQueryService::Options opts;
  opts.num_threads = workers;
  opts.max_queue = 1 << 15;
  EsdQueryService service(frozen, opts);
  // Signed: fetch_sub may legitimately run the shared ticket counter below
  // zero (one overshoot per client); unsigned would wrap and never stop.
  std::atomic<int64_t> remaining{static_cast<int64_t>(total)};
  esd::util::Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      esd::util::Rng rng(0x5E41 + c);
      while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
        (void)service.Query(mix.Draw(rng));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = wall.ElapsedSeconds();
  service.Stop();
  *out_snap = service.metrics().Snap();
  *out_wall_ms = wall_s * 1e3;
  return static_cast<double>(total) / wall_s;
}

/// Open loop: one submitter paces `total` requests at `rate_qps` with a
/// deadline on every request; responses are collected asynchronously.
double RunOpenLoop(const FrozenEsdIndex& frozen, const Workload& mix,
                   unsigned workers, double rate_qps, uint64_t total,
                   uint64_t deadline_us, MetricsSnapshot* out_snap,
                   double* out_wall_ms) {
  EsdQueryService::Options opts;
  opts.num_threads = workers;
  opts.max_queue = 1024;
  EsdQueryService service(frozen, opts);
  esd::util::Rng rng(0xA11CE);
  const double gap_s = 1.0 / rate_qps;
  std::vector<std::future<esd::serve::QueryResponse>> futures;
  futures.reserve(total);
  esd::util::Timer wall;
  for (uint64_t i = 0; i < total; ++i) {
    QueryRequest rq = mix.Draw(rng);
    rq.deadline_us = deadline_us;
    futures.push_back(service.Submit(rq));
    // Busy-ish pacing: sleep the residual of this request's slot.
    const double target = static_cast<double>(i + 1) * gap_s;
    double now = wall.ElapsedSeconds();
    if (target > now) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(target - now));
    }
  }
  for (auto& f : futures) (void)f.get();
  const double wall_s = wall.ElapsedSeconds();
  service.Stop();
  *out_snap = service.metrics().Snap();
  *out_wall_ms = wall_s * 1e3;
  return static_cast<double>(total) / wall_s;
}

}  // namespace

int main() {
  using namespace esd;

  const gen::Dataset d = bench::Load("pokec-s");
  std::printf("dataset %s: n=%u m=%u\n", d.name.c_str(),
              d.graph.NumVertices(), d.graph.NumEdges());
  util::Timer build;
  const FrozenEsdIndex frozen = core::BuildFrozenIndex(d.graph);
  std::printf("frozen index build: %.1f ms, %.2f MiB\n\n",
              build.ElapsedMillis(),
              static_cast<double>(frozen.MemoryBytes()) / (1024.0 * 1024.0));

  const Workload mix;
  const double scale = bench::BenchScale();
  const uint64_t closed_total = static_cast<uint64_t>(20000 * scale);
  const unsigned hw = util::ThreadPool::DefaultThreadCount();

  PrintHeader();
  std::vector<unsigned> worker_sweep{1, 2, 4};
  if (hw > 4) worker_sweep.push_back(hw);
  double single_thread_qps = 0;
  double best_multi_qps = 0;
  for (unsigned workers : worker_sweep) {
    const unsigned clients = std::max(2u, 2 * workers);
    MetricsSnapshot snap;
    double wall_ms = 0;
    const double qps = RunClosedLoop(frozen, mix, workers, clients,
                                     closed_total, &snap, &wall_ms);
    if (workers == 1) single_thread_qps = qps;
    if (workers > 1) best_multi_qps = std::max(best_multi_qps, qps);
    char op[32];
    std::snprintf(op, sizeof(op), "closed-w%u", workers);
    PrintRow("closed", workers, clients, qps, snap);
    EmitServeJson(d.name, op, wall_ms, frozen.MemoryBytes(), snap, qps);
  }

  // Open loop at ~60% of the measured closed-loop capacity, with a
  // deadline at ~20x the closed-loop p95 (so only true stalls shed).
  {
    const double rate = std::max(1000.0, 0.6 * single_thread_qps);
    const uint64_t open_total = static_cast<uint64_t>(5000 * scale);
    MetricsSnapshot snap;
    double wall_ms = 0;
    const double qps = RunOpenLoop(frozen, mix, hw, rate, open_total,
                                   /*deadline_us=*/100000, &snap, &wall_ms);
    PrintRow("open", hw, 1, qps, snap);
    EmitServeJson(d.name, "open-loop", wall_ms, frozen.MemoryBytes(), snap,
                  qps);
  }

  std::printf(
      "\nmulti-thread (best %.0f qps) vs single-thread (%.0f qps): %.2fx\n"
      "Reading: queue wait dominates execute at saturation; tau-batching\n"
      "amortizes the slab binary search across same-tau requests (see\n"
      "slab_searches_saved in the JSON lines).\n",
      best_multi_qps, single_thread_qps,
      single_thread_qps > 0 ? best_multi_qps / single_thread_qps : 0.0);
  bench::MaybeWriteTrace("serve_load");
  return 0;
}
