// Exp-2 / Fig. 6: (a) index size vs graph size on all five datasets;
// (b) construction time of ESDIndex (Algorithm 2, BFS-based) vs ESDIndex+
// (Algorithm 3, 4-clique based). The paper's findings to reproduce:
//   * the index is a small constant factor (4-8x) of the graph size,
//   * ESDIndex+ is 2-10x faster than ESDIndex, with the gap largest on
//     small-degeneracy graphs.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/index_builder.h"
#include "graph/core_decomposition.h"

int main() {
  using namespace esd;

  std::printf("Fig 6(a) — index size vs graph size\n");
  std::printf("%-15s %12s %12s %10s %12s\n", "dataset", "graph (MB)",
              "index (MB)", "ratio", "entries");
  std::vector<gen::Dataset> datasets = bench::LoadAll();
  for (const gen::Dataset& d : datasets) {
    core::EsdIndex index = core::BuildIndexClique(d.graph);
    // Graph payload: CSR adjacency (2m vertex ids + 2m edge ids) + offsets.
    double graph_mb =
        (2.0 * d.graph.NumEdges() * 8 + d.graph.NumVertices() * 8 +
         d.graph.NumEdges() * 8) /
        1e6;
    double index_mb = static_cast<double>(index.MemoryBytes()) / 1e6;
    std::printf("%-15s %12.2f %12.2f %9.2fx %12llu\n", d.name.c_str(),
                graph_mb, index_mb, index_mb / graph_mb,
                static_cast<unsigned long long>(index.NumEntries()));
  }

  std::printf("\nFig 6(b) — construction time\n");
  std::printf("%-15s %6s %16s %16s %9s\n", "dataset", "delta",
              "ESDIndex (ms)", "ESDIndex+ (ms)", "speedup");
  for (const gen::Dataset& d : datasets) {
    uint32_t delta = graph::ComputeCores(d.graph).degeneracy;
    // Bracketing the per-phase gauges isolates each builder's breakdown
    // (the gauges on the global registry are cumulative).
    const std::vector<double> at_start = bench::SnapBuildPhaseSeconds();
    double t_basic =
        bench::TimeOnce([&] { core::BuildIndexBasic(d.graph); });
    const std::vector<double> after_basic = bench::SnapBuildPhaseSeconds();
    double t_clique =
        bench::TimeOnce([&] { core::BuildIndexClique(d.graph); });
    const std::vector<double> after_clique = bench::SnapBuildPhaseSeconds();
    std::printf("%-15s %6u %16.1f %16.1f %8.2fx\n", d.name.c_str(), delta,
                t_basic * 1e3, t_clique * 1e3, t_basic / t_clique);
    bench::EmitJson("fig6_index_construction", "basic", d.name, "build",
                    t_basic * 1e3, 0,
                    bench::PhaseJsonFields(at_start, after_basic));
    bench::EmitJson("fig6_index_construction", "clique", d.name, "build",
                    t_clique * 1e3, 0,
                    bench::PhaseJsonFields(after_basic, after_clique));
  }
  bench::MaybeWriteTrace("fig6_index_construction");
  if (!bench::WriteBenchArtifact("fig6_index_construction")) return 1;
  return 0;
}
