// Exp-4 / Fig. 8: IndexSearch vs OnlineBFS+ on all five datasets, varying
// k (tau=3) and varying tau (k=100). The paper's findings to reproduce:
//   * IndexSearch answers in well under a millisecond,
//   * it beats OnlineBFS+ by >= 4 orders of magnitude,
//   * IndexSearch runtime is flat in tau (the index is tau-independent).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/online_topk.h"

int main() {
  using namespace esd;
  using core::OnlineTopK;
  using core::UpperBoundRule;

  const uint32_t kDefault = 100, tauDefault = 3;

  for (const gen::Dataset& d : bench::LoadAll()) {
    core::EsdIndex index = core::BuildIndexClique(d.graph);
    std::printf("== %s (n=%u, m=%u)\n", d.name.c_str(),
                d.graph.NumVertices(), d.graph.NumEdges());

    std::printf("-- vary k (tau=%u)\n", tauDefault);
    std::printf("%6s %18s %18s %12s\n", "k", "OnlineBFS+ (ms)",
                "IndexSearch (ms)", "speedup");
    for (uint32_t k : {1u, 10u, 50u, 100u, 150u, 200u}) {
      double online = bench::TimeOnce([&] {
        OnlineTopK(d.graph, k, tauDefault, UpperBoundRule::kCommonNeighbor);
      });
      double idx =
          bench::TimeMean([&] { index.Query(k, tauDefault); });
      std::printf("%6u %18.2f %18.4f %11.0fx\n", k, online * 1e3, idx * 1e3,
                  online / idx);
    }

    std::printf("-- vary tau (k=%u)\n", kDefault);
    std::printf("%6s %18s %18s %12s\n", "tau", "OnlineBFS+ (ms)",
                "IndexSearch (ms)", "speedup");
    for (uint32_t tau = 1; tau <= 6; ++tau) {
      double online = bench::TimeOnce([&] {
        OnlineTopK(d.graph, kDefault, tau, UpperBoundRule::kCommonNeighbor);
      });
      double idx = bench::TimeMean([&] { index.Query(kDefault, tau); });
      std::printf("%6u %18.2f %18.4f %11.0fx\n", tau, online * 1e3,
                  idx * 1e3, online / idx);
    }
    std::printf("\n");
  }
  return 0;
}
