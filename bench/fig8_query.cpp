// Exp-4 / Fig. 8: query engines on all five datasets, varying k (tau=3)
// and varying tau (k=100). The paper's findings to reproduce:
//   * IndexSearch answers in well under a millisecond,
//   * it beats OnlineBFS+ by >= 4 orders of magnitude,
//   * IndexSearch runtime is flat in tau (the index is tau-independent).
// Beyond the paper, the frozen serving image runs as a third column so its
// flat CSR scan can be compared against the treap traversal.
//
// Usage: fig8_query [engine...]   (any of: online treap frozen; default all)
// Machine-readable: one {"bench":...} JSON line per measurement.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/esd_index.h"
#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/online_topk.h"

int main(int argc, char** argv) {
  using namespace esd;
  using core::OnlineTopK;
  using core::UpperBoundRule;

  const std::vector<std::string> filter(argv + 1, argv + argc);
  auto enabled = [&filter](const char* engine) {
    return filter.empty() ||
           std::find(filter.begin(), filter.end(), engine) != filter.end();
  };
  const bool use_online = enabled("online");
  const bool use_treap = enabled("treap");
  const bool use_frozen = enabled("frozen");
  if (!use_online && !use_treap && !use_frozen) {
    std::fprintf(stderr, "usage: fig8_query [online|treap|frozen ...]\n");
    return 2;
  }

  const uint32_t kDefault = 100, tauDefault = 3;

  for (const gen::Dataset& d : bench::LoadAll()) {
    core::EsdIndex index;
    core::FrozenEsdIndex frozen;
    if (use_treap || use_frozen) index = core::BuildIndexClique(d.graph);
    if (use_frozen) frozen = core::Freeze(index);
    std::printf("== %s (n=%u, m=%u)\n", d.name.c_str(),
                d.graph.NumVertices(), d.graph.NumEdges());

    auto header = [&] {
      if (use_online) std::printf(" %18s", "OnlineBFS+ (ms)");
      if (use_treap) std::printf(" %14s", "treap (ms)");
      if (use_frozen) std::printf(" %14s", "frozen (ms)");
      if (use_online && use_treap) std::printf(" %12s", "speedup");
      std::printf("\n");
    };
    auto row = [&](uint32_t k, uint32_t tau, const std::string& op) {
      double online = 0, treap = 0, froz = 0;
      if (use_online) {
        online = bench::TimeOnce([&] {
          OnlineTopK(d.graph, k, tau, UpperBoundRule::kCommonNeighbor);
        });
      }
      if (use_treap) {
        treap = bench::TimeMean([&] { index.Query(k, tau); });
      }
      if (use_frozen) {
        froz = bench::TimeMean([&] { frozen.Query(k, tau); });
      }
      if (use_online) std::printf(" %18.2f", online * 1e3);
      if (use_treap) std::printf(" %14.4f", treap * 1e3);
      if (use_frozen) std::printf(" %14.4f", froz * 1e3);
      if (use_online && use_treap) std::printf(" %11.0fx", online / treap);
      std::printf("\n");
      if (use_online) {
        bench::EmitJson("fig8_query", "online", d.name, op, online * 1e3, 0);
      }
      if (use_treap) {
        bench::EmitJson("fig8_query", "treap", d.name, op, treap * 1e3,
                        index.MemoryBytes());
      }
      if (use_frozen) {
        bench::EmitJson("fig8_query", "frozen", d.name, op, froz * 1e3,
                        frozen.MemoryBytes());
      }
    };

    std::printf("-- vary k (tau=%u)\n", tauDefault);
    std::printf("%6s", "k");
    header();
    for (uint32_t k : {1u, 10u, 50u, 100u, 150u, 200u}) {
      std::printf("%6u", k);
      row(k, tauDefault, "topk_k" + std::to_string(k));
    }

    std::printf("-- vary tau (k=%u)\n", kDefault);
    std::printf("%6s", "tau");
    header();
    for (uint32_t tau = 1; tau <= 6; ++tau) {
      std::printf("%6u", tau);
      row(kDefault, tau, "topk_tau" + std::to_string(tau));
    }
    std::printf("\n");
  }
  if (!bench::WriteBenchArtifact("fig8_query")) return 1;
  return 0;
}
