// Table I: dataset statistics (n, m, d_max, degeneracy δ) for the five
// synthetic stand-ins, alongside the numbers the paper reports for the
// original SNAP graphs (the stand-ins are ~1/100 scale; see DESIGN.md §2).

#include <cstdio>

#include "bench/bench_common.h"
#include "cliques/triangle.h"
#include "gen/datasets.h"
#include "graph/stats.h"

int main() {
  using namespace esd;

  struct PaperRow {
    const char* name;
    uint64_t n, m, dmax, delta;
  };
  const PaperRow paper[] = {
      {"Youtube", 1134890, 2987624, 28754, 51},
      {"WikiTalk", 2394385, 4659565, 100029, 131},
      {"DBLP", 1843617, 8350260, 2213, 279},
      {"Pokec", 1632803, 22301964, 14854, 47},
      {"LiveJournal", 3997962, 34681189, 14815, 360},
  };

  std::printf("Table I — datasets (synthetic stand-ins at scale %.2f)\n\n",
              bench::BenchScale());
  std::printf("%-15s %10s %12s %8s %6s %6s %6s %5s | paper: %10s %12s %8s %6s\n",
              "dataset", "n", "m", "dmax", "delta", "cc", "assort", "lcc",
              "n", "m", "dmax", "delta");
  int i = 0;
  for (const gen::Dataset& d : bench::LoadAll()) {
    gen::DatasetStats s = gen::ComputeStats(d.graph);
    const PaperRow& p = paper[i++];
    std::printf(
        "%-15s %10llu %12llu %8u %6u %6.3f %+6.2f %5.2f | %10llu %12llu "
        "%8llu %6llu\n",
        d.name.c_str(), static_cast<unsigned long long>(s.n),
        static_cast<unsigned long long>(s.m), s.max_degree, s.degeneracy,
        cliques::GlobalClusteringCoefficient(d.graph),
        graph::DegreeAssortativity(d.graph),
        graph::LargestComponentFraction(d.graph),
        static_cast<unsigned long long>(p.n),
        static_cast<unsigned long long>(p.m),
        static_cast<unsigned long long>(p.dmax),
        static_cast<unsigned long long>(p.delta));
  }
  std::printf(
      "\n(cc = global clustering, assort = degree assortativity, lcc = "
      "largest-component fraction)\n");
  return 0;
}
