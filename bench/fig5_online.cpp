// Exp-1 / Fig. 5: OnlineBFS (min-degree bound) vs OnlineBFS+
// (common-neighbor bound) on pokec-s and livejournal-s, varying k (tau=3)
// and varying tau (k=100). The paper's findings to reproduce:
//   * both runtimes grow with k,
//   * runtime is highest near tau=1..2 and falls as tau grows,
//   * OnlineBFS+ is consistently (often several times) faster.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/online_topk.h"

int main() {
  using namespace esd;
  using core::OnlineTopK;
  using core::UpperBoundRule;

  const uint32_t kDefault = 100, tauDefault = 3;

  for (const char* name : {"pokec-s", "livejournal-s"}) {
    gen::Dataset d = bench::Load(name);
    std::printf("== %s (n=%u, m=%u)\n", name, d.graph.NumVertices(),
                d.graph.NumEdges());

    std::printf("-- vary k (tau=%u)\n", tauDefault);
    std::printf("%6s %18s %18s %9s\n", "k", "OnlineBFS (ms)",
                "OnlineBFS+ (ms)", "speedup");
    for (uint32_t k : {1u, 10u, 50u, 100u, 150u, 200u}) {
      double t_md = bench::TimeOnce([&] {
        OnlineTopK(d.graph, k, tauDefault, UpperBoundRule::kMinDegree);
      });
      double t_cn = bench::TimeOnce([&] {
        OnlineTopK(d.graph, k, tauDefault, UpperBoundRule::kCommonNeighbor);
      });
      std::printf("%6u %18.2f %18.2f %8.2fx\n", k, t_md * 1e3, t_cn * 1e3,
                  t_md / t_cn);
    }

    std::printf("-- vary tau (k=%u)\n", kDefault);
    std::printf("%6s %18s %18s %9s\n", "tau", "OnlineBFS (ms)",
                "OnlineBFS+ (ms)", "speedup");
    for (uint32_t tau = 1; tau <= 6; ++tau) {
      double t_md = bench::TimeOnce([&] {
        OnlineTopK(d.graph, kDefault, tau, UpperBoundRule::kMinDegree);
      });
      double t_cn = bench::TimeOnce([&] {
        OnlineTopK(d.graph, kDefault, tau, UpperBoundRule::kCommonNeighbor);
      });
      std::printf("%6u %18.2f %18.2f %8.2fx\n", tau, t_md * 1e3, t_cn * 1e3,
                  t_md / t_cn);
    }
    std::printf("\n");
  }
  return 0;
}
