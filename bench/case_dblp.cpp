// Exp-7 / Fig. 12: DBLP case study (tau=2). Quantifies the paper's
// qualitative claims on the collaboration network with planted ground
// truth:
//   * ESD's top-k edges are the planted multi-community bridges: many ego
//     components, endpoints with many co-authored papers (strong ties);
//   * CN's top-k edges sit inside one dense community (1-2 big components);
//   * BT's top-k edges are weak ties (few or no common neighbors), barbell
//     joints between two blobs.

#include <algorithm>
#include <cstdio>
#include <set>

#include "baselines/betweenness.h"
#include "baselines/common_neighbor.h"
#include "bench/bench_common.h"
#include "core/ego_network.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "gen/collaboration.h"
#include "util/timer.h"

namespace {

using esd::core::ScoredEdge;
using esd::core::TopKResult;
using esd::gen::CollaborationGraph;
using esd::graph::Edge;

struct MethodSummary {
  double avg_components = 0;   // ego components of the top edges
  double avg_common = 0;       // |N(uv)| of the top edges — tie strength
  double avg_span = 0;         // communities among common neighbors
  uint32_t planted_bridges = 0;
  uint32_t planted_barbells = 0;
};

MethodSummary Summarize(const CollaborationGraph& net,
                        const TopKResult& top) {
  MethodSummary s;
  std::set<Edge> bridges(net.planted_bridges.begin(),
                         net.planted_bridges.end());
  std::set<Edge> barbells(net.planted_barbells.begin(),
                          net.planted_barbells.end());
  for (const ScoredEdge& se : top) {
    auto common =
        esd::graph::CommonNeighbors(net.graph, se.edge.u, se.edge.v);
    auto sizes = esd::core::EgoComponentSizes(net.graph, se.edge.u, se.edge.v);
    std::set<uint32_t> span;
    for (auto w : common) span.insert(net.community[w]);
    s.avg_components += static_cast<double>(sizes.size());
    s.avg_common += static_cast<double>(common.size());
    s.avg_span += static_cast<double>(span.size());
    s.planted_bridges += bridges.count(se.edge);
    s.planted_barbells += barbells.count(se.edge);
  }
  double n = top.empty() ? 1.0 : static_cast<double>(top.size());
  s.avg_components /= n;
  s.avg_common /= n;
  s.avg_span /= n;
  return s;
}

}  // namespace

int main() {
  using namespace esd;

  gen::CollaborationParams params;
  params.num_authors =
      static_cast<uint32_t>(12000 * bench::BenchScale());
  params.num_papers = static_cast<uint32_t>(18000 * bench::BenchScale());
  params.num_communities = 30;
  params.barbell_clique_size = 35;
  gen::CollaborationGraph net = gen::GenerateCollaboration(params, 0xD819);
  std::printf("DB-like network: n=%u m=%u; tau=2, k=%u planted bridges, "
              "%u planted barbells\n\n",
              net.graph.NumVertices(), net.graph.NumEdges(),
              params.num_bridge_pairs, params.num_barbells);

  const uint32_t k = params.num_bridge_pairs;
  const uint32_t tau = 2;

  core::EsdIndex index = core::BuildIndexClique(net.graph);
  TopKResult esd_top = index.Query(k, tau, /*pad_with_zero_edges=*/false);
  TopKResult cn_top = baselines::TopKByCommonNeighbors(net.graph, k);
  TopKResult bt_top =
      baselines::TopKByBetweenness(net.graph, k, /*num_sources=*/500).edges;

  std::printf("%-6s %14s %12s %14s %10s %10s\n", "method", "ego comps",
              "|N(uv)|", "comm. span", "bridges", "barbells");
  for (auto [name, top] : {std::pair<const char*, const TopKResult*>{
                               "ESD", &esd_top},
                           {"CN", &cn_top},
                           {"BT", &bt_top}}) {
    MethodSummary s = Summarize(net, *top);
    std::printf("%-6s %14.1f %12.1f %14.1f %7u/%-3u %7u/%-3u\n", name,
                s.avg_components, s.avg_common, s.avg_span,
                s.planted_bridges, k, s.planted_barbells, k);
  }

  std::printf("\ntop-%u edges per method:\n", k);
  for (auto [name, top] : {std::pair<const char*, const TopKResult*>{
                               "ESD", &esd_top},
                           {"CN", &cn_top},
                           {"BT", &bt_top}}) {
    std::printf("  %s:", name);
    for (const ScoredEdge& se : *top) {
      std::printf(" %s--%s", net.author_names[se.edge.u].c_str(),
                  net.author_names[se.edge.v].c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper's reading (Fig. 12): ESD edges bridge many communities with\n"
      "strong ties; CN edges are intra-community; BT edges are weak-tie\n"
      "barbell joints. The summary table above checks each claim.\n");

  // The paper's Exp-7 closing observation: "when tau >= 3 the structural
  // diversity scores of most edges are no larger than 3 ... we recommend
  // to set tau as a small constant (e.g., tau = 2)". Reproduce by
  // comparing the top scores across thresholds.
  std::printf("\ntop-1 score by threshold:");
  for (uint32_t t2 = 1; t2 <= 5; ++t2) {
    TopKResult r = index.Query(1, t2, /*pad_with_zero_edges=*/false);
    std::printf(" tau=%u:%u", t2, r.empty() ? 0 : r[0].score);
  }
  std::printf(
      "\n(scores collapse once tau exceeds the typical context size — the\n"
      "paper saw the same on DBLP at tau >= 3 and recommends small tau,\n"
      "e.g. tau = 2).\n");
  return 0;
}
