// Exp-6 / Fig. 11: index maintenance cost. For each dataset, insert 1000
// random new edges and then delete them, reporting the average per-update
// time of the Insertion (Algorithm 4) and Deletion (Algorithm 5)
// algorithms. The paper's findings to reproduce:
//   * update cost grows with graph/index size,
//   * deletions cost more than insertions (the Update procedure),
//   * both are orders of magnitude cheaper than index reconstruction.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/dynamic_index.h"
#include "core/index_builder.h"
#include "util/flat_map.h"
#include "util/rng.h"

int main() {
  using namespace esd;

  const size_t kUpdates = 1000;
  std::printf("%-15s %14s %14s %16s %12s\n", "dataset", "insert (ms)",
              "delete (ms)", "rebuild (ms)", "touched/op");
  for (const gen::Dataset& d : bench::LoadAll()) {
    core::DynamicEsdIndex dyn(d.graph, core::DeletionStrategy::kTargeted);
    util::Rng rng(0xF16);

    // The paper's protocol: randomly select 1000 existing edges; delete
    // them, then insert them back.
    std::vector<graph::Edge> picked;
    {
      util::FlatSet<uint64_t> chosen(kUpdates);
      while (picked.size() < kUpdates) {
        graph::EdgeId e = static_cast<graph::EdgeId>(
            rng.NextBounded(d.graph.NumEdges()));
        if (chosen.Insert(e)) picked.push_back(d.graph.EdgeAt(e));
      }
    }

    uint64_t touched = 0;
    util::Timer timer;
    for (const graph::Edge& e : picked) {
      dyn.DeleteEdge(e.u, e.v);
      touched += dyn.LastUpdateTouchedEdges();
    }
    double delete_ms = timer.ElapsedMillis() / kUpdates;

    timer.Reset();
    for (const graph::Edge& e : picked) {
      dyn.InsertEdge(e.u, e.v);
      touched += dyn.LastUpdateTouchedEdges();
    }
    double insert_ms = timer.ElapsedMillis() / kUpdates;

    double rebuild_ms =
        bench::TimeOnce([&] { core::BuildIndexClique(d.graph); }) * 1e3;
    std::printf("%-15s %14.4f %14.4f %16.1f %12.1f\n", d.name.c_str(),
                insert_ms, delete_ms, rebuild_ms,
                static_cast<double>(touched) / (2 * kUpdates));
  }
  std::printf(
      "\n(\"touched/op\" = edges whose index entries one update rewrites —\n"
      " the locality that Observations 2 and 3 promise.)\n");
  return 0;
}
