// Exp-3 / Fig. 7: speedup of the parallel index construction (PESDIndex+)
// with t = 1..20 threads on pokec-s and livejournal-s.
//
// NOTE: the reproduction container exposes a single hardware core, so the
// measured speedup saturates near 1 regardless of t — the sweep still
// exercises the full parallel code path (striped-lock unions, edge-parallel
// enumeration) and reports whatever parallelism the host offers. On a
// multi-core machine this bench reproduces the paper's near-linear curve.

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "core/parallel_builder.h"

int main() {
  using namespace esd;

  std::printf("hardware threads available: %u\n\n",
              std::thread::hardware_concurrency());
  for (const char* name : {"pokec-s", "livejournal-s"}) {
    gen::Dataset d = bench::Load(name);
    std::printf("== %s (n=%u, m=%u)\n", name, d.graph.NumVertices(),
                d.graph.NumEdges());
    std::printf("%8s %12s %9s\n", "threads", "time (ms)", "speedup");
    double t1 = 0;
    for (unsigned t : {1u, 2u, 4u, 8u, 16u, 20u}) {
      double secs =
          bench::TimeOnce([&] { core::BuildIndexParallel(d.graph, t); });
      if (t == 1) t1 = secs;
      std::printf("%8u %12.1f %8.2fx\n", t, secs * 1e3, t1 / secs);
    }
    std::printf("\n");
  }
  return 0;
}
