// Ablation: vertex-parallel vs edge-parallel 4-clique enumeration
// (Section IV-E). The paper rejects vertex-parallelism because per-vertex
// clique work follows the (skewed) out-degree distribution, leaving most
// threads idle behind one hub. A single-core container cannot show the
// wall-clock gap, so this bench *measures the skew itself*: the share of
// total 4-clique work concentrated in the heaviest work units under each
// decomposition, plus wall-clock at whatever parallelism the host has.

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "cliques/four_clique.h"
#include "core/parallel_builder.h"
#include "graph/orientation.h"

int main() {
  using namespace esd;

  const unsigned threads =
      std::max(2u, std::thread::hardware_concurrency());
  std::printf("work-skew of the 4-clique enumeration (Sec. IV-E)\n\n");
  std::printf("%-15s %14s | %16s %16s | %16s %16s\n", "dataset", "work units",
              "vtx top-1%% share", "arc top-1%% share", "vtx-par (ms)",
              "edge-par (ms)");
  for (const gen::Dataset& d : bench::LoadAll()) {
    graph::DegreeOrderedDag dag(d.graph);
    // Work model per arc (u,v): the outer merge scans d+(u)+d+(v) slots,
    // then every member w of W = N+(u) ∩ N+(v) is merged against W
    // (d+(w) + |W| slots) — exactly the instruction profile of
    // ForEach4CliqueOfArc.
    std::vector<uint64_t> per_vertex(d.graph.NumVertices(), 0);
    std::vector<uint64_t> per_arc;
    per_arc.reserve(d.graph.NumEdges());
    uint64_t total = 0;
    std::vector<graph::VertexId> w_set;
    for (graph::VertexId u = 0; u < d.graph.NumVertices(); ++u) {
      auto nu = dag.OutNeighbors(u);
      for (graph::VertexId v : nu) {
        auto nv = dag.OutNeighbors(v);
        w_set.clear();
        std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                              std::back_inserter(w_set));
        uint64_t work = nu.size() + nv.size();
        for (graph::VertexId w : w_set) {
          work += dag.OutDegree(w) + w_set.size();
        }
        per_arc.push_back(work);
        per_vertex[u] += work;
        total += work;
      }
    }
    auto top_share = [total](std::vector<uint64_t> work) {
      if (total == 0 || work.empty()) return 0.0;
      std::sort(work.begin(), work.end(), std::greater<>());
      size_t top = std::max<size_t>(1, work.size() / 100);
      uint64_t sum = 0;
      for (size_t i = 0; i < top; ++i) sum += work[i];
      return 100.0 * static_cast<double>(sum) / static_cast<double>(total);
    };
    double vtx_time = bench::TimeOnce([&] {
      core::BuildIndexParallel(d.graph, threads, nullptr,
                               core::ParallelMode::kVertexParallel);
    });
    double edge_time = bench::TimeOnce([&] {
      core::BuildIndexParallel(d.graph, threads, nullptr,
                               core::ParallelMode::kEdgeParallel);
    });
    std::printf("%-15s %14llu | %15.1f%% %15.1f%% | %16.1f %16.1f\n",
                d.name.c_str(), static_cast<unsigned long long>(total),
                top_share(per_vertex), top_share(per_arc), vtx_time * 1e3,
                edge_time * 1e3);
  }
  std::printf(
      "\nReading: on skewed graphs (wikitalk-s) the heaviest 1%% of\n"
      "vertices own several times more clique work than the heaviest 1%% of\n"
      "arcs — the imbalance that makes the paper pick edge-parallel\n"
      "decomposition. On the flatter social graphs the degree ordering\n"
      "already evens out per-vertex work, so both decompositions balance.\n");
  return 0;
}
