// Extension experiment: top-k ego-betweenness through the scorer plugin
// seam. b(uv) = s(s-1)/2 - |E(G_{N(uv)})| (s = |N(uv)|) counts the
// non-adjacent common-neighbor pairs the tie {u,v} bridges — Everett &
// Borgatti's ego-betweenness restricted to the edge's shared contacts.
// The scorer encodes b as b copies of b so the generic H-list substrate
// answers top-k exactly (score_tau = b while tau <= b); the encoding is
// quadratic in the hub edges' neighborhood sizes, which this bench
// surfaces in the index-bytes column.

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/scorer.h"
#include "graph/graph.h"
#include "util/timer.h"

int main() {
  using namespace esd;

  const uint32_t k = 20, tau = 1;
  std::printf("top-%u ego-betweenness edges (tau=%u)\n\n", k, tau);
  std::printf("%-15s %12s %12s %12s %12s %18s\n", "dataset", "build (ms)",
              "query (us)", "top b", "idx MiB", "overlap with ESD-20");
  for (const gen::Dataset& d : bench::LoadAll()) {
    util::Timer t;
    const core::FrozenEsdIndex egobw =
        core::BuildFrozenIndex(d.graph, core::EgoBetweennessScorer());
    const double build_ms = t.ElapsedMillis();
    const double query_us =
        bench::TimeMean([&] { egobw.Query(k, tau); }) * 1e6;
    const core::TopKResult top = egobw.Query(k, tau);

    const core::FrozenEsdIndex esd =
        core::BuildFrozenIndex(d.graph, core::EsdScorer());
    std::set<std::pair<graph::VertexId, graph::VertexId>> esd_top;
    for (const core::ScoredEdge& e : esd.Query(k, tau)) {
      esd_top.emplace(e.edge.u, e.edge.v);
    }
    uint32_t overlap = 0;
    for (const core::ScoredEdge& e : top) {
      overlap += esd_top.count({e.edge.u, e.edge.v});
    }

    std::printf("%-15s %12.1f %12.2f %12u %12.2f %15u/%u\n", d.name.c_str(),
                build_ms, query_us, top.empty() ? 0 : top.front().score,
                static_cast<double>(egobw.MemoryBytes()) / (1024.0 * 1024.0),
                overlap, k);
    bench::EmitJson("ext_ego_betweenness", "frozen", d.name, "topk",
                    build_ms, egobw.MemoryBytes(), "\"scorer\":\"egobw\"");
  }
  std::printf(
      "\nReading: ego-betweenness crowns broker edges (many mutually\n"
      "unacquainted shared contacts) where ESD crowns edges spanning many\n"
      "circles; the two top-k sets overlap only on bridges that do both.\n"
      "The b-copies-of-b encoding makes index bytes grow with the square\n"
      "of hub neighborhood sizes — see DESIGN.md section 11 for why that\n"
      "trade buys exact top-k on the unmodified serving stack.\n");
  bench::MaybeWriteTrace("ext_ego_betweenness");
  if (!bench::WriteBenchArtifact("ext_ego_betweenness")) return 1;
  return 0;
}
