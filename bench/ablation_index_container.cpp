// Ablation: what the paper's choice of a self-balancing BST for each H(c)
// list buys over flat storage.
//
// Part 1 (whole-engine, run first): treap-backed EsdIndex vs its frozen
// CSR-slab image serving the same top-k workload on real datasets —
// latency and resident bytes, as a table plus {"bench":...} JSON lines.
//
// Part 2 (google-benchmark micro): container-level top-k scan and point
// insert/erase (the maintenance workload): the treap's O(log n) vs the
// vector's O(n) memmove — the reason Section V's maintenance needs a tree.

#include <algorithm>
#include <cstdio>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/esd_index.h"
#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "util/rng.h"
#include "util/treap.h"

namespace {

using Entry = esd::core::EsdIndex::Entry;
using Less = esd::core::EsdIndex::EntryLess;
using Treap = esd::util::Treap<Entry, Less>;

std::vector<Entry> MakeEntries(size_t n, uint64_t seed) {
  esd::util::Rng rng(seed);
  std::vector<Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    entries.push_back(Entry{static_cast<uint32_t>(rng.NextBounded(64)),
                            static_cast<uint32_t>(i)});
  }
  std::sort(entries.begin(), entries.end(), Less());
  return entries;
}

void BM_TreapTopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Treap treap;
  treap.BuildFromSorted(MakeEntries(n, 1));
  for (auto _ : state) {
    uint32_t sum = 0;
    size_t left = 100;
    treap.ForEachInOrder([&](const Entry& e) {
      sum += e.score;
      return --left > 0;
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_TreapTopK)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_VectorTopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Entry> vec = MakeEntries(n, 1);
  for (auto _ : state) {
    uint32_t sum = 0;
    for (size_t i = 0; i < std::min<size_t>(100, vec.size()); ++i) {
      sum += vec[i].score;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_VectorTopK)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TreapChurn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Treap treap;
  treap.BuildFromSorted(MakeEntries(n, 1));
  esd::util::Rng rng(2);
  for (auto _ : state) {
    Entry e{static_cast<uint32_t>(rng.NextBounded(64)),
            static_cast<uint32_t>(rng.NextBounded(n))};
    treap.Erase(e);  // may miss: fine, erase+insert mix either way
    treap.Insert(e);
  }
}
BENCHMARK(BM_TreapChurn)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_VectorChurn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Entry> vec = MakeEntries(n, 1);
  esd::util::Rng rng(2);
  Less less;
  for (auto _ : state) {
    Entry e{static_cast<uint32_t>(rng.NextBounded(64)),
            static_cast<uint32_t>(rng.NextBounded(n))};
    auto it = std::lower_bound(vec.begin(), vec.end(), e, less);
    if (it != vec.end() && it->score == e.score && it->e == e.e) {
      vec.erase(it);
    }
    it = std::lower_bound(vec.begin(), vec.end(), e, less);
    if (it == vec.end() || it->score != e.score || it->e != e.e) {
      vec.insert(it, e);
    }
  }
}
BENCHMARK(BM_VectorChurn)->Arg(1000)->Arg(10000)->Arg(100000);

// Whole-engine comparison: the same 4-clique build feeds both engines, so
// any latency/memory gap is purely the serving container.
void CompareEngines() {
  const uint32_t k = 100, tau = 3;
  std::printf("== engine comparison: Query(k=%u, tau=%u)\n", k, tau);
  std::printf("%-12s %14s %14s %12s %12s\n", "dataset", "treap (ms)",
              "frozen (ms)", "treap MiB", "frozen MiB");
  for (const char* name : {"dblp-s", "youtube-s"}) {
    esd::gen::Dataset d = esd::bench::Load(name);
    esd::core::EsdIndex treap = esd::core::BuildIndexClique(d.graph);
    esd::core::FrozenEsdIndex frozen = esd::core::Freeze(treap);
    double treap_ms =
        esd::bench::TimeMean([&] { treap.Query(k, tau); }) * 1e3;
    double frozen_ms =
        esd::bench::TimeMean([&] { frozen.Query(k, tau); }) * 1e3;
    std::printf("%-12s %14.4f %14.4f %12.2f %12.2f\n", name, treap_ms,
                frozen_ms, treap.MemoryBytes() / (1024.0 * 1024.0),
                frozen.MemoryBytes() / (1024.0 * 1024.0));
    esd::bench::EmitJson("ablation_index_container", "treap", name,
                         "topk_k100_tau3", treap_ms, treap.MemoryBytes());
    esd::bench::EmitJson("ablation_index_container", "frozen", name,
                         "topk_k100_tau3", frozen_ms, frozen.MemoryBytes());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  CompareEngines();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!esd::bench::WriteBenchArtifact("ablation_index_container")) return 1;
  return 0;
}
