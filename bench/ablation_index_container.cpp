// Ablation (google-benchmark): what the paper's choice of a self-balancing
// BST for each H(c) list buys over a plain sorted vector.
//   * Top-k scan: both are fast (vector wins on constants);
//   * point insert/erase (the maintenance workload): the treap's O(log n)
//     vs the vector's O(n) memmove — the reason Section V's maintenance
//     needs a tree.

#include <algorithm>
#include <vector>

#include <benchmark/benchmark.h>

#include "core/esd_index.h"
#include "util/rng.h"
#include "util/treap.h"

namespace {

using Entry = esd::core::EsdIndex::Entry;
using Less = esd::core::EsdIndex::EntryLess;
using Treap = esd::util::Treap<Entry, Less>;

std::vector<Entry> MakeEntries(size_t n, uint64_t seed) {
  esd::util::Rng rng(seed);
  std::vector<Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    entries.push_back(Entry{static_cast<uint32_t>(rng.NextBounded(64)),
                            static_cast<uint32_t>(i)});
  }
  std::sort(entries.begin(), entries.end(), Less());
  return entries;
}

void BM_TreapTopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Treap treap;
  treap.BuildFromSorted(MakeEntries(n, 1));
  for (auto _ : state) {
    uint32_t sum = 0;
    size_t left = 100;
    treap.ForEachInOrder([&](const Entry& e) {
      sum += e.score;
      return --left > 0;
    });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_TreapTopK)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_VectorTopK(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Entry> vec = MakeEntries(n, 1);
  for (auto _ : state) {
    uint32_t sum = 0;
    for (size_t i = 0; i < std::min<size_t>(100, vec.size()); ++i) {
      sum += vec[i].score;
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_VectorTopK)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_TreapChurn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Treap treap;
  treap.BuildFromSorted(MakeEntries(n, 1));
  esd::util::Rng rng(2);
  for (auto _ : state) {
    Entry e{static_cast<uint32_t>(rng.NextBounded(64)),
            static_cast<uint32_t>(rng.NextBounded(n))};
    treap.Erase(e);  // may miss: fine, erase+insert mix either way
    treap.Insert(e);
  }
}
BENCHMARK(BM_TreapChurn)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_VectorChurn(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Entry> vec = MakeEntries(n, 1);
  esd::util::Rng rng(2);
  Less less;
  for (auto _ : state) {
    Entry e{static_cast<uint32_t>(rng.NextBounded(64)),
            static_cast<uint32_t>(rng.NextBounded(n))};
    auto it = std::lower_bound(vec.begin(), vec.end(), e, less);
    if (it != vec.end() && it->score == e.score && it->e == e.e) {
      vec.erase(it);
    }
    it = std::lower_bound(vec.begin(), vec.end(), e, less);
    if (it == vec.end() || it->score != e.score || it->e != e.e) {
      vec.insert(it, e);
    }
  }
}
BENCHMARK(BM_VectorChurn)->Arg(1000)->Arg(10000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
