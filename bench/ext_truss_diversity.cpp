// Extension experiment: truss-cohesion structural diversity through the
// scorer plugin seam. The truss scorer keeps the ESD decomposition of the
// edge ego-network into components, but values each component by its
// k-truss cohesion (max trussness of its edges) instead of its size, so
// score_tau counts the contact circles that are at least tau-cohesive.
// Measures the frozen-index build + query cost of the plugin path on each
// dataset and reports how differently truss diversity and plain ESD rank
// the same edges.

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "core/frozen_index.h"
#include "core/index_builder.h"
#include "core/scorer.h"
#include "graph/graph.h"
#include "util/timer.h"

int main() {
  using namespace esd;

  const uint32_t k = 20, tau = 2;
  std::printf("top-%u truss-cohesion diversity (tau=%u)\n\n", k, tau);
  std::printf("%-15s %12s %12s %12s %18s\n", "dataset", "build (ms)",
              "query (us)", "top score", "overlap with ESD-20");
  for (const gen::Dataset& d : bench::LoadAll()) {
    util::Timer t;
    const core::FrozenEsdIndex truss =
        core::BuildFrozenIndex(d.graph, core::TrussScorer());
    const double build_ms = t.ElapsedMillis();
    const double query_us =
        bench::TimeMean([&] { truss.Query(k, tau); }) * 1e6;
    const core::TopKResult top = truss.Query(k, tau);

    // The same top-k under the paper's ESD definition; count the overlap.
    const core::FrozenEsdIndex esd =
        core::BuildFrozenIndex(d.graph, core::EsdScorer());
    std::set<std::pair<graph::VertexId, graph::VertexId>> esd_top;
    for (const core::ScoredEdge& e : esd.Query(k, tau)) {
      esd_top.emplace(e.edge.u, e.edge.v);
    }
    uint32_t overlap = 0;
    for (const core::ScoredEdge& e : top) {
      overlap += esd_top.count({e.edge.u, e.edge.v});
    }

    std::printf("%-15s %12.1f %12.2f %12u %15u/%u\n", d.name.c_str(),
                build_ms, query_us, top.empty() ? 0 : top.front().score,
                overlap, k);
    bench::EmitJson("ext_truss_diversity", "frozen", d.name, "topk",
                    build_ms, truss.MemoryBytes(), "\"scorer\":\"truss\"");
  }
  std::printf(
      "\nReading: truss diversity demotes edges whose many ego components\n"
      "are loose paths and stars, surfacing ties whose contact circles are\n"
      "individually dense — a cohesion-weighted refinement of ESD running\n"
      "on the identical frozen/H-list serving machinery.\n");
  bench::MaybeWriteTrace("ext_truss_diversity");
  if (!bench::WriteBenchArtifact("ext_truss_diversity")) return 1;
  return 0;
}
