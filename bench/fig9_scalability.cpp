// Exp-5 / Figs. 9-10: scalability on livejournal-s subgraphs obtained by
// sampling 20%..100% of the edges (Fig. 9a / 10a) and of the vertices
// (Fig. 9b / 10b). The paper's findings to reproduce:
//   * OnlineBFS+ grows smoothly (roughly linearly) with graph size,
//   * IndexSearch stays flat and ~4 orders of magnitude faster,
//   * PESDIndex+ construction grows smoothly; multi-threaded runs keep a
//     stable speedup across sizes (hardware permitting).

#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "core/esd_index.h"
#include "core/index_builder.h"
#include "core/online_topk.h"
#include "core/parallel_builder.h"
#include "graph/sampling.h"

int main() {
  using namespace esd;
  using core::OnlineTopK;
  using core::UpperBoundRule;

  const uint32_t k = 100, tau = 3;
  const unsigned max_threads =
      std::max(1u, std::thread::hardware_concurrency());
  gen::Dataset d = bench::Load("livejournal-s");
  std::printf("base: %s n=%u m=%u; query k=%u tau=%u\n\n", d.name.c_str(),
              d.graph.NumVertices(), d.graph.NumEdges(), k, tau);

  for (int mode = 0; mode < 2; ++mode) {
    const char* label = mode == 0 ? "edges" : "vertices";
    std::printf("-- sampling %s (Fig. 9%s, 10%s)\n", label,
                mode == 0 ? "a" : "b", mode == 0 ? "a" : "b");
    std::printf("%5s %10s %10s %16s %16s %14s %14s\n", "pct", "n", "m",
                "OnlineBFS+ (ms)", "IndexSearch(ms)", "build t=1 (ms)",
                "build t=max");
    for (int pct : {20, 40, 60, 80, 100}) {
      graph::Graph g =
          pct == 100
              ? d.graph
              : (mode == 0 ? graph::SampleEdges(d.graph, pct / 100.0, 77)
                           : graph::SampleVertices(d.graph, pct / 100.0, 77));
      double online = bench::TimeOnce(
          [&] { OnlineTopK(g, k, tau, UpperBoundRule::kCommonNeighbor); });
      core::EsdIndex index = core::BuildIndexClique(g);
      double query = bench::TimeMean([&] { index.Query(k, tau); });
      double build1 =
          bench::TimeOnce([&] { core::BuildIndexParallel(g, 1); });
      double buildN = bench::TimeOnce(
          [&] { core::BuildIndexParallel(g, max_threads); });
      std::printf("%4d%% %10u %10u %16.2f %16.4f %14.1f %14.1f\n", pct,
                  g.NumVertices(), g.NumEdges(), online * 1e3, query * 1e3,
                  build1 * 1e3, buildN * 1e3);
    }
    std::printf("\n");
  }
  return 0;
}
