// Ablation: the two deletion-repair strategies of DynamicEsdIndex.
//   kRebuildLocal — rebuild the disjoint sets of every affected edge from
//                   scratch (simple);
//   kTargeted     — the paper's Update procedure (Algorithm 5): rebuild
//                   only the component that contained the deleted edge.
// Both are provably equivalent (tests assert identical indexes); this
// bench shows what the paper's extra machinery buys.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/dynamic_index.h"
#include "util/flat_map.h"
#include "util/rng.h"

int main() {
  using namespace esd;

  const size_t kUpdates = 500;
  std::printf("%zu delete+reinsert cycles per dataset\n\n", kUpdates);
  std::printf("%-15s %22s %22s %9s\n", "dataset", "rebuild-local (ms/op)",
              "targeted (ms/op)", "speedup");
  for (const gen::Dataset& d : bench::LoadAll()) {
    // Same edge sample for both strategies.
    util::Rng rng(0xAB1A);
    std::vector<graph::Edge> picked;
    util::FlatSet<uint64_t> chosen(kUpdates);
    while (picked.size() < kUpdates) {
      graph::EdgeId e =
          static_cast<graph::EdgeId>(rng.NextBounded(d.graph.NumEdges()));
      if (chosen.Insert(e)) picked.push_back(d.graph.EdgeAt(e));
    }
    double ms[2];
    int i = 0;
    for (core::DeletionStrategy strategy :
         {core::DeletionStrategy::kRebuildLocal,
          core::DeletionStrategy::kTargeted}) {
      core::DynamicEsdIndex dyn(d.graph, strategy);
      util::Timer timer;
      for (const graph::Edge& e : picked) dyn.DeleteEdge(e.u, e.v);
      for (const graph::Edge& e : picked) dyn.InsertEdge(e.u, e.v);
      ms[i++] = timer.ElapsedMillis() / (2.0 * kUpdates);
    }
    std::printf("%-15s %22.4f %22.4f %8.2fx\n", d.name.c_str(), ms[0], ms[1],
                ms[0] / ms[1]);
  }

  // Batch mode: the same churn applied through ApplyBatch, which
  // deduplicates score refreshes across the whole batch.
  std::printf("\nbatched churn (%zu deletes then %zu inserts per batch)\n",
              kUpdates, kUpdates);
  std::printf("%-15s %22s %22s %9s\n", "dataset", "sequential (ms/op)",
              "batched (ms/op)", "speedup");
  for (const gen::Dataset& d : bench::LoadAll()) {
    util::Rng rng(0xAB1B);
    std::vector<graph::Edge> picked;
    util::FlatSet<uint64_t> chosen(kUpdates);
    while (picked.size() < kUpdates) {
      graph::EdgeId e =
          static_cast<graph::EdgeId>(rng.NextBounded(d.graph.NumEdges()));
      if (chosen.Insert(e)) picked.push_back(d.graph.EdgeAt(e));
    }
    using Update = core::DynamicEsdIndex::EdgeUpdate;
    std::vector<Update> batch;
    for (const graph::Edge& e : picked) {
      batch.push_back({Update::Kind::kDelete, e.u, e.v});
    }
    for (const graph::Edge& e : picked) {
      batch.push_back({Update::Kind::kInsert, e.u, e.v});
    }
    core::DynamicEsdIndex seq(d.graph, core::DeletionStrategy::kTargeted);
    util::Timer timer;
    for (const Update& up : batch) {
      if (up.kind == Update::Kind::kDelete) {
        seq.DeleteEdge(up.u, up.v);
      } else {
        seq.InsertEdge(up.u, up.v);
      }
    }
    double seq_ms = timer.ElapsedMillis() / batch.size();
    core::DynamicEsdIndex batched(d.graph, core::DeletionStrategy::kTargeted);
    timer.Reset();
    batched.ApplyBatch(batch);
    double batch_ms = timer.ElapsedMillis() / batch.size();
    std::printf("%-15s %22.4f %22.4f %8.2fx\n", d.name.c_str(), seq_ms,
                batch_ms, seq_ms / batch_ms);
  }
  return 0;
}
